package invoke

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/schema"
)

// instant is an injected Sleep that never actually waits, keeping the retry
// suites fast and deterministic.
func instant(ctx context.Context, d time.Duration) error { return ctx.Err() }

// tempService answers every call with a single materialized <temp> element.
var tempService = core.ContextInvokerFunc(func(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
	return []*doc.Node{doc.Elem("temp", doc.TextNode("20"))}, nil
})

// newsPair builds the Figure 2 sender/target pair: the sender may keep the
// call intensional, targetContent decides what the receiver accepts.
func newsPair(t *testing.T, targetContent string) (*schema.Schema, *schema.Schema) {
	t.Helper()
	sender := schema.MustParseText(`
root page
elem page = Get_Temp|temp
elem temp = data
elem city = data
func Get_Temp = city -> temp
`, nil)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), fmt.Sprintf(`
root page
elem page = %s
elem temp = data
elem city = data
func Get_Temp = city -> temp
`, targetContent), nil)
	if err != nil {
		t.Fatal(err)
	}
	return sender, target
}

func pageDoc() *doc.Node {
	return doc.Elem("page", doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))
}

// TestFaultRetryRecoversSafeMode is acceptance criterion (a): two transient
// errors, then a good answer — a Safe rewriting behind WithRetry(3) succeeds,
// and the audit shows exactly the attempts, pauses and faults that happened.
func TestFaultRetryRecoversSafeMode(t *testing.T) {
	sender, target := newsPair(t, "temp")
	fi := NewFaultInjector(tempService).
		Plan("Get_Temp", Fault{Kind: FaultError}, Fault{Kind: FaultError})
	rw := core.NewRewriterWithConfig(sender, target, core.RewriterConfig{
		Depth:    1,
		Invoker:  fi,
		Policies: []core.InvokePolicy{WithRetry(Retry{Attempts: 3, Sleep: instant})},
	})
	out, err := rw.RewriteDocumentContext(context.Background(), pageDoc(), core.Safe)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Children) != 1 || out.Children[0].Label != "temp" {
		t.Fatalf("temp not materialized: %v", out.ChildLabels())
	}
	if got := fi.Calls("Get_Temp"); got != 3 {
		t.Errorf("delivery attempts = %d, want 3", got)
	}
	a := rw.Audit
	if n := a.EventCount(core.EventAttempt); n != 3 {
		t.Errorf("attempt events = %d, want 3", n)
	}
	if n := a.EventCount(core.EventRetryWait); n != 2 {
		t.Errorf("retry-wait events = %d, want 2", n)
	}
	if n := a.EventCount(core.EventFault); n != 2 {
		t.Errorf("fault events = %d, want 2", n)
	}
	if a.Len() != 1 {
		t.Errorf("call records = %d, want 1 (only the completed call)", a.Len())
	}
}

// TestFaultRetryExhaustedAbortsSafeMode: the same dead service aborts a Safe
// rewriting — Safe promised success, so a failed call is a hard error carrying
// the policy diagnosis.
func TestFaultRetryExhaustedAbortsSafeMode(t *testing.T) {
	sender, target := newsPair(t, "temp")
	fi := NewFaultInjector(nil) // schedule exhausted => ErrInjected every time
	rw := core.NewRewriterWithConfig(sender, target, core.RewriterConfig{
		Depth:    1,
		Invoker:  fi,
		Policies: []core.InvokePolicy{WithRetry(Retry{Attempts: 3, Sleep: instant})},
	})
	_, err := rw.RewriteDocumentContext(context.Background(), pageDoc(), core.Safe)
	var pe *PolicyError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PolicyError, got %v", err)
	}
	if pe.Policy != "retry" || pe.Attempts != 3 {
		t.Errorf("PolicyError = %+v", pe)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("cause not preserved: %v", err)
	}
	if !core.IsTransientCall(err) {
		t.Error("exhausted retry should classify as transient")
	}
	if n := rw.Audit.EventCount(core.EventExhausted); n != 1 {
		t.Errorf("exhausted events = %d, want 1", n)
	}
}

// TestFaultPossibleModeDegradesToBacktracking is acceptance criterion (b): in
// Possible mode the exhausted policy is treated like an unlucky answer — the
// occurrence is frozen, the backtracking machinery runs, and the caller gets
// the rewriting verdict (*NotSafeError), never the raw policy abort.
func TestFaultPossibleModeDegradesToBacktracking(t *testing.T) {
	sender, target := newsPair(t, "temp")
	fi := NewFaultInjector(nil)
	rw := core.NewRewriterWithConfig(sender, target, core.RewriterConfig{
		Depth:    1,
		Invoker:  fi,
		Policies: []core.InvokePolicy{WithRetry(Retry{Attempts: 2, Sleep: instant})},
	})
	root := pageDoc()
	_, err := rw.RewriteDocumentContext(context.Background(), root, core.Possible)
	var nse *core.NotSafeError
	if !errors.As(err, &nse) {
		t.Fatalf("want *NotSafeError (degraded + backtracked), got %T: %v", err, err)
	}
	var pe *PolicyError
	if errors.As(err, &pe) {
		t.Errorf("policy abort leaked through the degradation path: %v", err)
	}
	if n := rw.Audit.EventCount(core.EventDegraded); n != 1 {
		t.Errorf("degraded events = %d, want 1", n)
	}
	if n := rw.Audit.EventCount(core.EventExhausted); n != 1 {
		t.Errorf("exhausted events = %d, want 1", n)
	}
}

// TestFaultMixedPreInvokeSurvivesDeadService: the Mixed speculative pass is
// best-effort — when the endpoint is dead, the call is left intensional and
// the rewriting still succeeds because the target admits the function node.
func TestFaultMixedPreInvokeSurvivesDeadService(t *testing.T) {
	sender, target := newsPair(t, "Get_Temp|temp")
	fi := NewFaultInjector(nil)
	rw := core.NewRewriterWithConfig(sender, target, core.RewriterConfig{
		Depth:    1,
		Invoker:  fi,
		Policies: []core.InvokePolicy{WithRetry(Retry{Attempts: 2, Sleep: instant})},
	})
	out, err := rw.RewriteDocumentContext(context.Background(), pageDoc(), core.Mixed)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Children) != 1 || out.Children[0].Kind != doc.Func {
		t.Fatalf("dead service should stay intensional, got %v", out.ChildLabels())
	}
	if n := rw.Audit.EventCount(core.EventDegraded); n != 1 {
		t.Errorf("degraded events = %d, want 1", n)
	}
	if rw.Audit.Len() != 0 {
		t.Errorf("no call completed, but audit has %d records", rw.Audit.Len())
	}
}

// TestFaultMixedPreInvokeUsesLiveService: the control for the previous test —
// with a healthy endpoint the speculative pass materializes the call.
func TestFaultMixedPreInvokeUsesLiveService(t *testing.T) {
	sender, target := newsPair(t, "Get_Temp|temp")
	rw := core.NewRewriterWithConfig(sender, target, core.RewriterConfig{
		Depth:   1,
		Invoker: NewFaultInjector(tempService),
	})
	out, err := rw.RewriteDocumentContext(context.Background(), pageDoc(), core.Mixed)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Children) != 1 || out.Children[0].Label != "temp" {
		t.Fatalf("live service should materialize, got %v", out.ChildLabels())
	}
}

// TestFaultTimeoutCancelsHang is acceptance criterion (c) at the policy
// level: a hung service under WithTimeout fails promptly with the timeout
// PolicyError while the surrounding rewriting context stays live, and the
// hung call's goroutine unwinds.
func TestFaultTimeoutCancelsHang(t *testing.T) {
	before := runtime.NumGoroutine()
	fi := NewFaultInjector(tempService).Plan("Get_Temp", Fault{Kind: FaultHang})
	inv := Chain(fi, WithTimeout(30*time.Millisecond))

	start := time.Now()
	_, err := inv.Invoke(context.Background(), doc.Call("Get_Temp"))
	elapsed := time.Since(start)

	var pe *PolicyError
	if !errors.As(err, &pe) || pe.Policy != "timeout" {
		t.Fatalf("want timeout PolicyError, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cause should be DeadlineExceeded: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("hang took %v to cancel", elapsed)
	}
	if !core.IsTransientCall(err) {
		t.Error("per-call timeout should classify as transient")
	}
	// Second scheduled call passes through: the timeout is per call.
	if out, err := inv.Invoke(context.Background(), doc.Call("Get_Temp")); err != nil || len(out) != 1 {
		t.Errorf("post-hang call failed: %v %v", out, err)
	}
	checkGoroutines(t, before)
}

// TestFaultTimeoutRespectsParentCancel: when the *parent* context dies first,
// the parent's error surfaces as-is, not a timeout PolicyError.
func TestFaultTimeoutRespectsParentCancel(t *testing.T) {
	fi := NewFaultInjector(nil).Plan("F", Fault{Kind: FaultHang})
	inv := Chain(fi, WithTimeout(time.Minute))
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	_, err := inv.Invoke(ctx, doc.Call("F"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	var pe *PolicyError
	if errors.As(err, &pe) {
		t.Errorf("parent cancellation must not be reported as a policy timeout: %v", err)
	}
}

// TestFaultRetryBackoffDeterministic pins the backoff schedule with injected
// jitter randomness: pause_i = base*mult^i scaled by (1-j+j*u).
func TestFaultRetryBackoffDeterministic(t *testing.T) {
	var waits []time.Duration
	capture := func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return nil
	}
	inv := Chain(NewFaultInjector(nil), WithRetry(Retry{
		Attempts:   3,
		BaseDelay:  10 * time.Millisecond,
		Multiplier: 2,
		Jitter:     0.5,
		Rand:       func() float64 { return 0.5 },
		Sleep:      capture,
	}))
	if _, err := inv.Invoke(context.Background(), doc.Call("F")); err == nil {
		t.Fatal("dead service should fail")
	}
	want := []time.Duration{7500 * time.Microsecond, 15 * time.Millisecond}
	if len(waits) != len(want) {
		t.Fatalf("waits = %v, want %v", waits, want)
	}
	for i := range want {
		if waits[i] != want[i] {
			t.Errorf("wait[%d] = %v, want %v", i, waits[i], want[i])
		}
	}
}

// TestFaultRetryNonRetryable: a Retryable predicate stops the budget early
// and surfaces the original error.
func TestFaultRetryNonRetryable(t *testing.T) {
	fatal := errors.New("schema violation")
	fi := NewFaultInjector(nil).Plan("F", Fault{Kind: FaultError, Err: fatal})
	inv := Chain(fi, WithRetry(Retry{
		Attempts:  5,
		Sleep:     instant,
		Retryable: func(err error) bool { return !errors.Is(err, fatal) },
	}))
	_, err := inv.Invoke(context.Background(), doc.Call("F"))
	if !errors.Is(err, fatal) {
		t.Fatalf("want the non-retryable error, got %v", err)
	}
	if fi.Calls("F") != 1 {
		t.Errorf("non-retryable error was retried: %d calls", fi.Calls("F"))
	}
}

// TestFaultBreakerLifecycle drives the closed → open → half-open → closed
// cycle with a fake clock and checks every transition is reported as events.
func TestFaultBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	fi := NewFaultInjector(tempService).
		Plan("F", Fault{Kind: FaultError}, Fault{Kind: FaultError}, Fault{Kind: FaultError})
	inv := Chain(fi, WithBreaker(Breaker{Failures: 2, Cooldown: time.Minute, Now: clock}))
	audit := &core.Audit{}
	ctx := core.WithEventSink(context.Background(), audit)
	call := func() error { _, err := inv.Invoke(ctx, doc.Call("F")); return err }

	// Two failures trip the breaker.
	if err := call(); !errors.Is(err, ErrInjected) {
		t.Fatalf("1st call: %v", err)
	}
	if err := call(); !errors.Is(err, ErrInjected) {
		t.Fatalf("2nd call: %v", err)
	}
	if n := audit.EventCount(core.EventBreakerOpen); n != 1 {
		t.Fatalf("breaker-open events = %d, want 1", n)
	}
	// Open: calls fail fast without reaching the service.
	served := fi.TotalCalls()
	err := call()
	var pe *PolicyError
	if !errors.As(err, &pe) || pe.Policy != "breaker" || !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker should reject: %v", err)
	}
	if !core.IsTransientCall(err) {
		t.Error("breaker rejection should classify as transient")
	}
	if fi.TotalCalls() != served {
		t.Error("rejected call still reached the service")
	}
	if n := audit.EventCount(core.EventBreakerReject); n != 1 {
		t.Errorf("breaker-reject events = %d, want 1", n)
	}
	// After the cooldown, one probe is admitted; the third scheduled fault
	// fails it, re-opening the circuit.
	now = now.Add(61 * time.Second)
	if err := call(); !errors.Is(err, ErrInjected) {
		t.Fatalf("probe should reach the service: %v", err)
	}
	if n := audit.EventCount(core.EventBreakerHalfOpen); n != 1 {
		t.Errorf("half-open events = %d, want 1", n)
	}
	if n := audit.EventCount(core.EventBreakerOpen); n != 2 {
		t.Errorf("breaker-open events = %d, want 2 (probe failure re-opens)", n)
	}
	// Second cooldown: the schedule is exhausted, the probe succeeds, the
	// circuit closes and stays closed.
	now = now.Add(61 * time.Second)
	if err := call(); err != nil {
		t.Fatalf("successful probe: %v", err)
	}
	if n := audit.EventCount(core.EventBreakerClose); n != 1 {
		t.Errorf("breaker-close events = %d, want 1", n)
	}
	if err := call(); err != nil {
		t.Fatalf("closed circuit: %v", err)
	}
}

// TestFaultBreakerPerEndpoint: one dead endpoint must not open the circuit
// for a healthy one.
func TestFaultBreakerPerEndpoint(t *testing.T) {
	fi := NewFaultInjector(tempService).
		Plan("Dead", Fault{Kind: FaultError}, Fault{Kind: FaultError}, Fault{Kind: FaultError})
	inv := Chain(fi, WithBreaker(Breaker{Failures: 2, Cooldown: time.Hour}))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := inv.Invoke(ctx, doc.Call("Dead")); err == nil {
			t.Fatal("dead endpoint should fail")
		}
	}
	if _, err := inv.Invoke(ctx, doc.Call("Alive")); err != nil {
		t.Fatalf("healthy endpoint tripped by a dead one: %v", err)
	}
}

// TestFaultConcurrencyLimit: with one slot taken by a hung call, a waiter
// whose context dies fails with the limit PolicyError; releasing the slot
// restores service.
func TestFaultConcurrencyLimit(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	slow := core.ContextInvokerFunc(func(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
		once.Do(func() { close(entered) })
		select {
		case <-release:
			return []*doc.Node{doc.TextNode("ok")}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	inv := Chain(slow, WithConcurrencyLimit(1))

	done := make(chan error, 1)
	go func() {
		_, err := inv.Invoke(context.Background(), doc.Call("F"))
		done <- err
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := inv.Invoke(ctx, doc.Call("F"))
	var pe *PolicyError
	if !errors.As(err, &pe) || pe.Policy != "limit" {
		t.Fatalf("want limit PolicyError, got %v", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("holder failed: %v", err)
	}
	if _, err := inv.Invoke(context.Background(), doc.Call("F")); err != nil {
		t.Fatalf("slot not released: %v", err)
	}
}

// TestFaultInjectorSchedule covers the schedule bookkeeping: per-label plans,
// the "*" catch-all, latency and garbage kinds, pass-through past the end.
func TestFaultInjectorSchedule(t *testing.T) {
	garbage := []*doc.Node{doc.Elem("nonsense")}
	fi := NewFaultInjector(tempService).
		Plan("F", Fault{Kind: FaultLatency, Latency: time.Millisecond}, Fault{Kind: FaultGarbage, Result: garbage}).
		Plan("*", Fault{Kind: FaultError})
	ctx := context.Background()

	// F #1: latency then delegate.
	if out, err := fi.Invoke(ctx, doc.Call("F")); err != nil || out[0].Label != "temp" {
		t.Fatalf("latency fault: %v %v", out, err)
	}
	// F #2: garbage result.
	if out, err := fi.Invoke(ctx, doc.Call("F")); err != nil || out[0].Label != "nonsense" {
		t.Fatalf("garbage fault: %v %v", out, err)
	}
	// F #3: schedule exhausted, pass-through.
	if out, err := fi.Invoke(ctx, doc.Call("F")); err != nil || out[0].Label != "temp" {
		t.Fatalf("pass-through: %v %v", out, err)
	}
	// G #1: the catch-all plan applies to labels without their own schedule.
	if _, err := fi.Invoke(ctx, doc.Call("G")); !errors.Is(err, ErrInjected) {
		t.Fatalf("catch-all: %v", err)
	}
	if fi.Calls("F") != 3 || fi.Calls("G") != 1 || fi.TotalCalls() != 4 {
		t.Errorf("counters: F=%d G=%d total=%d", fi.Calls("F"), fi.Calls("G"), fi.TotalCalls())
	}
}

// TestFaultChainOrder: policies[0] is the outermost layer — a retry outside a
// timeout re-attempts timed-out calls; swapped, the timeout caps all attempts
// together.
func TestFaultChainOrder(t *testing.T) {
	fi := NewFaultInjector(tempService).Plan("F", Fault{Kind: FaultHang})
	inv := Chain(fi,
		WithRetry(Retry{Attempts: 2, Sleep: instant}),
		WithTimeout(20*time.Millisecond),
	)
	out, err := inv.Invoke(context.Background(), doc.Call("F"))
	if err != nil || len(out) != 1 {
		t.Fatalf("retry-over-timeout should recover a single hang: %v %v", out, err)
	}
	if fi.Calls("F") != 2 {
		t.Errorf("calls = %d, want 2 (hang, then success)", fi.Calls("F"))
	}

	// Swapped: the single timeout budget covers both attempts, so a hang
	// exhausts the retry budget inside one expiring context.
	fi2 := NewFaultInjector(tempService).Plan("F", Fault{Kind: FaultHang})
	inv2 := Chain(fi2,
		WithTimeout(20*time.Millisecond),
		WithRetry(Retry{Attempts: 2, Sleep: instant}),
	)
	if _, err := inv2.Invoke(context.Background(), doc.Call("F")); err == nil {
		t.Fatal("timeout-over-retry cannot outlive its one deadline")
	}
}

// TestFaultRewriteCancellationNoLeak is acceptance criterion (c) end to end:
// a full policy chain over a hung service, cancelled mid-rewrite — prompt
// context error, no goroutine growth.
func TestFaultRewriteCancellationNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	sender, target := newsPair(t, "temp")
	fi := NewFaultInjector(nil).Plan("*", Fault{Kind: FaultHang}, Fault{Kind: FaultHang}, Fault{Kind: FaultHang})
	rw := core.NewRewriterWithConfig(sender, target, core.RewriterConfig{
		Depth:   1,
		Invoker: fi,
		Policies: []core.InvokePolicy{
			WithConcurrencyLimit(4),
			WithBreaker(Breaker{}),
			WithRetry(Retry{Attempts: 3, Sleep: instant}),
			// No per-call timeout: only the rewrite-level context can save us.
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := rw.RewriteDocumentContext(ctx, pageDoc(), core.Safe)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	checkGoroutines(t, before)
}

// checkGoroutines waits for the goroutine count to return to the baseline.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d", before, runtime.NumGoroutine())
}
