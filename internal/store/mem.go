package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"axml/internal/doc"
	"axml/internal/wal"
	"axml/internal/xmlio"
)

// Repository is the in-memory DocStore: a map of named intensional
// documents. It is safe for concurrent use; documents are cloned on the way
// in and out so that callers can never mutate stored state behind the lock —
// stored nodes are immutable once the mutating call returns, which is what
// lets DurableRepository snapshot the map with a shallow copy.
//
// Every mutation also maintains the function index (see FunctionIndex):
// which documents embed which function labels.
type Repository struct {
	mu     sync.RWMutex
	docs   map[string]*doc.Node
	closed bool
	// journal, when set, observes every mutation under the write lock,
	// before it commits: a journal error aborts the mutation, so an
	// acknowledged mutation is exactly a logged one. d is the node the
	// repository is about to own (nil for deletes); the journal must not
	// retain or mutate it. Installed by DurableRepository.
	journal func(name string, d *doc.Node) error

	// Function index, maintained at the commit point of every mutation:
	// docFuncs records each document's distinct function labels, byFunc is
	// the inverted map answering DocsWithFunction.
	docFuncs map[string][]string
	byFunc   map[string]map[string]struct{}
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{
		docs:     make(map[string]*doc.Node),
		docFuncs: make(map[string][]string),
		byFunc:   make(map[string]map[string]struct{}),
	}
}

// ValidateDocName rejects names that cannot safely become file names:
// empty, "." / "..", or anything containing a path separator. SaveDir and
// the disk backend join names onto a directory, so an unchecked "../evil"
// would escape it.
func ValidateDocName(name string) error {
	switch {
	case name == "":
		return fmt.Errorf("store: document name must not be empty")
	case name == "." || name == "..":
		return fmt.Errorf("store: %q is not a valid document name", name)
	case strings.ContainsAny(name, `/\`):
		return fmt.Errorf("store: document name %q must not contain path separators", name)
	}
	return nil
}

// indexLocked records name's function labels at the commit point of a
// mutation; funcs == nil (a delete) drops the document from the index.
// Caller holds the write lock.
func (r *Repository) indexLocked(name string, d *doc.Node) {
	for _, fn := range r.docFuncs[name] {
		if docs := r.byFunc[fn]; docs != nil {
			delete(docs, name)
			if len(docs) == 0 {
				delete(r.byFunc, fn)
			}
		}
	}
	if d == nil {
		delete(r.docFuncs, name)
		return
	}
	funcs := FuncNames(d)
	if len(funcs) == 0 {
		delete(r.docFuncs, name)
		return
	}
	r.docFuncs[name] = funcs
	for _, fn := range funcs {
		docs := r.byFunc[fn]
		if docs == nil {
			docs = make(map[string]struct{})
			r.byFunc[fn] = docs
		}
		docs[name] = struct{}{}
	}
}

// Put stores a document under a name (cloned). Names containing path
// separators are rejected — they would let SaveDir write outside its
// directory.
func (r *Repository) Put(name string, d *doc.Node) error {
	if err := ValidateDocName(name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("store: put %q: %w", name, ErrClosed)
	}
	c := d.Clone()
	if r.journal != nil {
		if err := r.journal(name, c); err != nil {
			return err
		}
	}
	r.docs[name] = c
	r.indexLocked(name, c)
	return nil
}

// Get returns a clone of the named document.
func (r *Repository) Get(name string) (*doc.Node, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.docs[name]
	if !ok {
		return nil, false
	}
	return d.Clone(), true
}

// Update applies fn to a clone of the stored document under the write lock;
// fn may return a replacement (or the mutated clone). The returned node is
// owned by the repository from that point on: fn must not retain a
// reference to either its argument or its return value, and mutating one
// after Update returns is a contract violation. The clone on the way in is
// what makes retaining the *argument* harmless — it can never alias stored
// state. A miss reports ErrNotFound (wrapped).
func (r *Repository) Update(name string, fn func(*doc.Node) (*doc.Node, error)) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("store: update %q: %w", name, ErrClosed)
	}
	d, ok := r.docs[name]
	if !ok {
		return fmt.Errorf("store: no document %q: %w", name, ErrNotFound)
	}
	next, err := fn(d.Clone())
	if err != nil {
		return err
	}
	if r.journal != nil {
		if err := r.journal(name, next); err != nil {
			return err
		}
	}
	r.docs[name] = next
	r.indexLocked(name, next)
	return nil
}

// Delete removes a document. Deleting an absent name is a no-op. The error
// is always nil for a plain repository; with a durability journal installed
// it reports a failed WAL append, in which case the document is retained.
func (r *Repository) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("store: delete %q: %w", name, ErrClosed)
	}
	if _, ok := r.docs[name]; !ok {
		return nil
	}
	if r.journal != nil {
		if err := r.journal(name, nil); err != nil {
			return err
		}
	}
	delete(r.docs, name)
	r.indexLocked(name, nil)
	return nil
}

// Names lists stored document names, sorted.
func (r *Repository) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.docs))
	for name := range r.docs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of stored documents.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.docs)
}

// Scan lists up to limit names lexicographically after the cursor.
func (r *Repository) Scan(after string, limit int) ([]string, bool, error) {
	if limit <= 0 {
		limit = DefaultScanLimit
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.docs))
	for name := range r.docs {
		if name > after {
			names = append(names, name)
		}
	}
	r.mu.RUnlock()
	sort.Strings(names)
	more := len(names) > limit
	if more {
		names = names[:limit]
	}
	return names, more, nil
}

// DocsWithFunction returns the sorted names of documents embedding at least
// one function node labeled fn — answered from the maintained index, not by
// walking documents.
func (r *Repository) DocsWithFunction(fn string) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	docs := r.byFunc[fn]
	out := make([]string, 0, len(docs))
	for name := range docs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Stats reports the in-memory backend counters.
func (r *Repository) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Stats{Backend: BackendMem, Documents: len(r.docs), Functions: len(r.byFunc)}
}

// Close retires the repository: subsequent mutations fail with ErrClosed,
// reads keep serving the last committed state. Idempotent.
func (r *Repository) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	return nil
}

// SaveDir persists every document as <name>.xml in dir (created if needed)
// and reconciles the directory against the repository: each file is written
// atomically (temp file, fsync, rename — a crash mid-save never leaves a
// truncated .xml to poison the next LoadDir), and managed files whose
// document no longer exists are removed, so deleted documents do not
// resurrect on the next load. SaveDir owns dir: any *.xml file whose base
// name is a valid document name is considered managed.
func (r *Repository) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, d := range r.docs {
		if err := ValidateDocName(name); err != nil {
			return err // defense in depth: Put already rejects these
		}
		s, err := xmlio.String(d)
		if err != nil {
			return fmt.Errorf("store: serializing %q: %w", name, err)
		}
		if err := wal.WriteFileAtomic(filepath.Join(dir, name+".xml"), []byte(s), 0o644); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		// Crashed atomic writes leave temp files; they are never loadable
		// and safe to drop.
		if strings.HasPrefix(e.Name(), wal.TempPrefix) {
			os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		base, isXML := strings.CutSuffix(e.Name(), ".xml")
		if !isXML || ValidateDocName(base) != nil {
			continue // not a file SaveDir could have written
		}
		if _, ok := r.docs[base]; !ok {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("store: reconciling %s: %w", e.Name(), err)
			}
		}
	}
	return nil
}

// ConflictPolicy decides what LoadDir does when a file's name collides with
// a document already in memory.
type ConflictPolicy int

const (
	// KeepExisting keeps the in-memory document and skips the file — the
	// safe default: recovered (WAL-replayed) state must not be clobbered
	// by a seed directory.
	KeepExisting ConflictPolicy = iota
	// Overwrite replaces the in-memory document with the file's.
	Overwrite
	// FailOnConflict reports the first collision as an error.
	FailOnConflict
)

func (p ConflictPolicy) String() string {
	switch p {
	case KeepExisting:
		return "keep-existing"
	case Overwrite:
		return "overwrite"
	case FailOnConflict:
		return "fail"
	default:
		return fmt.Sprintf("ConflictPolicy(%d)", int(p))
	}
}

// LoadDir loads every *.xml file of dir into the repository, keyed by file
// base name, keeping existing in-memory documents on name collision
// (KeepExisting). Use LoadDirWith to choose another policy.
func (r *Repository) LoadDir(dir string) error {
	_, err := r.LoadDirWith(dir, KeepExisting)
	return err
}

// LoadDirWith is LoadDir under an explicit conflict policy; it reports how
// many documents were actually stored (files skipped by KeepExisting do not
// count).
func (r *Repository) LoadDirWith(dir string, policy ConflictPolicy) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return loaded, fmt.Errorf("store: %w", err)
		}
		d, err := xmlio.ParseString(string(data))
		if err != nil {
			return loaded, fmt.Errorf("store: parsing %s: %w", e.Name(), err)
		}
		stored, err := r.putWith(strings.TrimSuffix(e.Name(), ".xml"), d, policy)
		if err != nil {
			return loaded, err
		}
		if stored {
			loaded++
		}
	}
	return loaded, nil
}

// putWith is Put under a conflict policy, atomic with respect to the
// collision check.
func (r *Repository) putWith(name string, d *doc.Node, policy ConflictPolicy) (bool, error) {
	if err := ValidateDocName(name); err != nil {
		return false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false, fmt.Errorf("store: put %q: %w", name, ErrClosed)
	}
	if _, exists := r.docs[name]; exists {
		switch policy {
		case KeepExisting:
			return false, nil
		case FailOnConflict:
			return false, fmt.Errorf("store: document %q already exists", name)
		}
	}
	c := d.Clone()
	if r.journal != nil {
		if err := r.journal(name, c); err != nil {
			return false, err
		}
	}
	r.docs[name] = c
	r.indexLocked(name, c)
	return true, nil
}
