package workload

import (
	"context"
	"math/rand"
	"testing"

	"axml/internal/doc"
	"axml/internal/schema"
)

func TestRandomSchemaWellFormed(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := RandomSchema(rng, Options{Labels: 5, Funcs: 3})
		if s.Root != "e0" {
			t.Fatalf("root = %q", s.Root)
		}
		if len(s.Labels) != 10 { // 5 structured + 5 data
			t.Fatalf("labels = %d", len(s.Labels))
		}
		if len(s.Funcs) != 3 {
			t.Fatalf("funcs = %d", len(s.Funcs))
		}
		if err := s.CheckDeterministic(); err != nil {
			t.Errorf("seed %d: generated schema not deterministic: %v", seed, err)
		}
	}
}

func TestGeneratedInstancesValidate(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := RandomSchema(rng, Options{Labels: 4, Funcs: 2})
		g := NewGenerator(s, rng)
		root, err := g.Root()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ctx := schema.NewContext(s, nil)
		if err := ctx.Validate(root); err != nil {
			t.Errorf("seed %d: generated instance invalid: %v\n%s", seed, err, root)
		}
	}
}

func TestGeneratorTerminatesOnRecursiveSchema(t *testing.T) {
	s := schema.MustParseText(`
root results
elem results = url*.Get_More?
elem url = data
func Get_More = data -> url*.Get_More?
`, nil)
	g := NewGenerator(s, rand.New(rand.NewSource(1)))
	g.MaxDepth = 4
	for i := 0; i < 50; i++ {
		root, err := g.Root()
		if err != nil {
			t.Fatal(err)
		}
		if root.Count() > 10000 {
			t.Fatal("runaway generation")
		}
	}
}

func TestSimInvokerOutputsConform(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := RandomSchema(rng, Options{Labels: 4, Funcs: 3})
		si := NewSimInvoker(s, rng)
		ctx := schema.NewContext(s, nil)
		for _, fname := range s.SortedFuncs() {
			call := doc.Call(fname)
			out, err := si.Invoke(context.Background(), call)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, fname, err)
			}
			if err := ctx.IsOutputInstance(fname, out); err != nil {
				t.Errorf("seed %d: simulated %s returned non-instance: %v", seed, fname, err)
			}
		}
		if si.Calls != len(s.Funcs) {
			t.Errorf("calls = %d", si.Calls)
		}
	}
}

func TestSimInvokerUnknownFunc(t *testing.T) {
	s := schema.MustParseText("elem a = data", nil)
	si := NewSimInvoker(s, rand.New(rand.NewSource(1)))
	if _, err := si.Invoke(context.Background(), doc.Call("nope")); err == nil {
		t.Error("unknown function should error")
	}
}

func TestDataFunctionSimulation(t *testing.T) {
	s := schema.MustParseText(`
elem temp = data
func Read = data -> data
`, nil)
	si := NewSimInvoker(s, rand.New(rand.NewSource(1)))
	out, err := si.Invoke(context.Background(), doc.Call("Read"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Kind != doc.Text {
		t.Errorf("data function should return one text node, got %v", out)
	}
}

func TestPatternInstanceGeneration(t *testing.T) {
	s := schema.MustParseText(`
root page
elem page = Forecast
elem city = data
elem temp = data
func Get_Temp = city -> temp
pattern Forecast = city -> temp
`, nil)
	g := NewGenerator(s, rand.New(rand.NewSource(2)))
	root, err := g.Root()
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 1 || root.Children[0].Label != "Get_Temp" {
		t.Errorf("pattern slot should be filled by Get_Temp: %s", root)
	}
	ctx := schema.NewContext(s, nil)
	if err := ctx.Validate(root); err != nil {
		t.Errorf("pattern instance invalid: %v", err)
	}
}
