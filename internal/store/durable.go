package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"axml/internal/doc"
	"axml/internal/wal"
	"axml/internal/xmlio"
)

// DurableRepository wraps a Repository with a write-ahead log and periodic
// snapshot compaction so that the repository survives crashes and restarts:
// every acknowledged Put/Update/Delete is framed into the WAL (under the
// repository's write lock, so log order is apply order) before it commits,
// and recovery at Open loads the newest valid snapshot, replays the WAL
// tail, and truncates any torn final record.
//
// The embedded *Repository is the live repository: hand it (or the
// DurableRepository itself — both satisfy DocStore) to a Peer and every
// mutation path — HTTP PUT/DELETE on /doc/{name}, Materialize, negotiation —
// becomes durable with no further wiring.
type DurableRepository struct {
	*Repository

	log       *wal.Log
	snapEvery int
	closed    atomic.Bool

	// compactMu serializes Snapshot/Close; pending counts logged
	// mutations since the last rotation.
	compactMu sync.Mutex
	pending   atomic.Int64

	kick chan struct{} // nudges the background compactor (never closed)
	stop chan struct{} // closed by Close to retire the compactor
	done chan struct{} // closed when the compactor exits

	// recovery facts, frozen at Open
	recoveredDocs   int
	replayedRecords int
	truncatedTails  int
}

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Sync is the WAL fsync discipline (default wal.SyncAlways).
	Sync wal.SyncMode
	// SyncInterval is the background fsync period for wal.SyncInterval.
	SyncInterval time.Duration
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// logged mutations; 0 snapshots only on Close (and explicit Snapshot
	// calls).
	SnapshotEvery int
	// Metrics, when non-nil, instruments the WAL (see wal.NewMetrics).
	Metrics *wal.Metrics
	// TailRecords, when positive, retains that many recent WAL records in
	// memory for replication streaming (wal.Options.TailRecords) — set on
	// a federation leader so followers can resume incrementally.
	TailRecords int
}

// OpenDurable opens (or creates) the durable repository stored in dir,
// running crash recovery first: state = newest valid snapshot + WAL tail,
// with later records winning over both the snapshot and any torn garbage
// dropped. The returned repository is empty only if the directory was.
func OpenDurable(dir string, opts DurableOptions) (*DurableRepository, error) {
	log, state, err := wal.Open(dir, wal.Options{
		Sync:         opts.Sync,
		SyncInterval: opts.SyncInterval,
		Metrics:      opts.Metrics,
		TailRecords:  opts.TailRecords,
	})
	if err != nil {
		return nil, err
	}
	repo := NewRepository()
	for name, data := range state.Docs {
		d, err := xmlio.ParseString(string(data))
		if err != nil {
			// Checksums passed, so this is not disk damage: the payload
			// itself was never a valid document. Refuse to silently drop
			// state.
			log.Close()
			return nil, fmt.Errorf("store: recovering %q: %w", name, err)
		}
		if err := repo.Put(name, d); err != nil {
			log.Close()
			return nil, fmt.Errorf("store: recovering %q: %w", name, err)
		}
	}
	d := &DurableRepository{
		Repository:      repo,
		log:             log,
		snapEvery:       opts.SnapshotEvery,
		recoveredDocs:   len(state.Docs),
		replayedRecords: state.ReplayedRecords,
		truncatedTails:  state.TruncatedRecords,
	}
	// Installed only after recovery: replayed documents are already on
	// disk and must not be re-logged.
	repo.journal = d.journalMutation
	if d.snapEvery > 0 {
		d.kick = make(chan struct{}, 1)
		d.stop = make(chan struct{})
		d.done = make(chan struct{})
		go d.compactLoop()
	}
	return d, nil
}

// journalMutation runs under the repository write lock: it frames the
// mutation into the WAL and, with SyncAlways, fsyncs before the mutation is
// acknowledged. d == nil encodes a delete.
func (r *DurableRepository) journalMutation(name string, n *doc.Node) error {
	if r.closed.Load() {
		return fmt.Errorf("store: durable repository: %w", ErrClosed)
	}
	op, data := wal.OpDelete, []byte(nil)
	if n != nil {
		s, err := xmlio.String(n)
		if err != nil {
			return fmt.Errorf("store: journaling %q: %w", name, err)
		}
		op, data = wal.OpPut, []byte(s)
	}
	if err := r.log.Append(op, name, data); err != nil {
		return fmt.Errorf("store: journaling %q: %w", name, err)
	}
	if r.snapEvery > 0 && r.pending.Add(1) >= int64(r.snapEvery) {
		select {
		case r.kick <- struct{}{}:
		default: // a compaction is already pending
		}
	}
	return nil
}

// compactLoop runs automatic compactions off the mutation path.
func (r *DurableRepository) compactLoop() {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			return
		case <-r.kick:
			if r.pending.Load() < int64(r.snapEvery) {
				continue // already compacted by an explicit Snapshot call
			}
			// Best-effort: a failed compaction leaves the WAL growing
			// but intact; the next threshold crossing (or Close)
			// retries.
			_ = r.Snapshot()
		}
	}
}

// Snapshot compacts the log now: it rotates the WAL to a fresh generation,
// captures the repository state at the rotation point, writes it as an
// atomic snapshot, and prunes superseded files. Safe to call concurrently
// with mutations; concurrent Snapshot calls are serialized.
func (r *DurableRepository) Snapshot() error {
	r.compactMu.Lock()
	defer r.compactMu.Unlock()
	repo := r.Repository

	// Rotation and state capture must be atomic with respect to
	// mutations: a mutation logged to the old generation is in the
	// capture; one logged to the new generation is replayed over the
	// snapshot. Stored nodes are immutable once acknowledged, so a
	// shallow copy of the map is a consistent capture.
	repo.mu.Lock()
	seq, err := r.log.Rotate()
	if err != nil {
		repo.mu.Unlock()
		return err
	}
	capture := make(map[string]*doc.Node, len(repo.docs))
	for name, d := range repo.docs {
		capture[name] = d
	}
	r.pending.Store(0)
	repo.mu.Unlock()

	enc := make(map[string][]byte, len(capture))
	for name, d := range capture {
		s, err := xmlio.String(d)
		if err != nil {
			return fmt.Errorf("store: snapshotting %q: %w", name, err)
		}
		enc[name] = []byte(s)
	}
	return r.log.WriteSnapshot(seq, enc)
}

// Close writes a final snapshot and closes the WAL. Mutations attempted
// after Close fail; reads keep working. Close is idempotent.
func (r *DurableRepository) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	if r.stop != nil {
		close(r.stop)
		<-r.done
	}
	// The final snapshot makes the next boot's recovery a pure snapshot
	// load. journalMutation now rejects new mutations, so the capture is
	// the final state.
	serr := r.Snapshot()
	cerr := r.log.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// WAL exposes the underlying log — the replication layer streams its tail
// (wal.ReadAfter / AppendNotify) and sequences its state exports against
// it. Callers must not Close or Rotate it directly.
func (r *DurableRepository) WAL() *wal.Log {
	return r.log
}

// ExportState captures the full repository state consistently with the WAL
// record sequence: every record with sequence <= seq is reflected in docs,
// and seq+1 is exactly the next record a replica resuming from this capture
// needs. The capture is taken under the repository read lock (mutations
// journal and commit under the write lock, so the pair is atomic here);
// serialization happens outside it.
func (r *DurableRepository) ExportState() (docs map[string][]byte, seq uint64, err error) {
	repo := r.Repository
	repo.mu.RLock()
	capture := make(map[string]*doc.Node, len(repo.docs))
	for name, d := range repo.docs {
		capture[name] = d
	}
	seq = r.log.HeadSeq()
	repo.mu.RUnlock()

	docs = make(map[string][]byte, len(capture))
	for name, d := range capture {
		s, err := xmlio.String(d)
		if err != nil {
			return nil, 0, fmt.Errorf("store: exporting %q: %w", name, err)
		}
		docs[name] = []byte(s)
	}
	return docs, seq, nil
}

// Stats reports the durable backend counters: WAL state plus recovery facts
// over the embedded repository's document and index counts.
func (r *DurableRepository) Stats() Stats {
	st := r.Repository.Stats()
	st.Backend = BackendWAL
	walStats := r.log.Stats()
	st.WAL = &walStats
	st.RecoveredDocuments = r.recoveredDocs
	st.SnapshotEvery = r.snapEvery
	return st
}
