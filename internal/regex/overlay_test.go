package regex

import (
	"fmt"
	"sync"
	"testing"
)

func TestOverlayResolvesParentSymbols(t *testing.T) {
	root := NewTable()
	a := root.Intern("a")
	b := root.Intern("b")

	ov := root.Overlay()
	if got := ov.Intern("a"); got != a {
		t.Fatalf("overlay Intern(a) = %d, want parent's %d", got, a)
	}
	if got, ok := ov.Lookup("b"); !ok || got != b {
		t.Fatalf("overlay Lookup(b) = %d,%v, want %d,true", got, ok, b)
	}
	if ov.Name(a) != "a" || ov.Name(b) != "b" {
		t.Fatalf("overlay Name() does not resolve parent symbols")
	}
}

func TestOverlayInternsLocallyWithoutGrowingParent(t *testing.T) {
	root := NewTable()
	root.Intern("a")
	before := root.Len()

	ov := root.Overlay()
	x := ov.Intern("x")
	y := ov.Intern("y")
	if root.Len() != before {
		t.Fatalf("parent grew from %d to %d via overlay interning", before, root.Len())
	}
	if _, ok := root.Lookup("x"); ok {
		t.Fatalf("parent sees overlay-local name")
	}
	if int(x) != before || int(y) != before+1 {
		t.Fatalf("overlay symbols %d,%d do not continue parent numbering from %d", x, y, before)
	}
	if ov.Name(x) != "x" || ov.Name(y) != "y" {
		t.Fatalf("overlay Name() wrong for local symbols")
	}
	if ov.Intern("x") != x {
		t.Fatalf("overlay re-intern not idempotent")
	}
	if ov.Len() != before+2 {
		t.Fatalf("overlay Len() = %d, want %d", ov.Len(), before+2)
	}
}

// A name the parent interns after overlay creation must stay invisible: the
// overlay's symbol assignment cannot depend on concurrent parent growth.
func TestOverlayFrozenAgainstLaterParentGrowth(t *testing.T) {
	root := NewTable()
	root.Intern("a")
	ov := root.Overlay()

	late := root.Intern("late") // parent grows after the snapshot
	s := ov.Intern("x")         // overlay numbering must not shift
	if int(s) != int(late) {
		// Both continue from the same snapshot point — ids may coincide
		// numerically, but each view resolves its own: that is the invariant.
		t.Fatalf("overlay symbol %d, parent post-snapshot symbol %d: numbering diverged from the snapshot", s, late)
	}
	if ov.Name(s) != "x" {
		t.Fatalf("overlay Name(%d) = %q, want x (post-snapshot parent name leaked in)", s, ov.Name(s))
	}
	// "late" is invisible to the overlay: it resolves to a fresh local id,
	// not the parent's post-snapshot one (which may mean a different name in
	// overlays created earlier).
	s2 := ov.Intern("late")
	if s2 == late || ov.Name(s2) != "late" {
		t.Fatalf("overlay Intern(late) = %d (parent's %d); want a fresh local id", s2, late)
	}
	if got, ok := ov.Lookup("late"); !ok || got != s2 {
		t.Fatalf("overlay Lookup(late) = %d,%v, want local %d", got, ok, s2)
	}
	// The parent's assignment is unaffected.
	if got, _ := root.Lookup("late"); got != late {
		t.Fatalf("parent's own symbol changed")
	}
}

func TestOverlayNamesAndSymbols(t *testing.T) {
	root := NewTable()
	root.Intern("a")
	root.Intern("b")
	ov := root.Overlay()
	ov.Intern("x")

	want := []string{"a", "b", "x"}
	got := ov.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if syms := ov.Symbols(); len(syms) != 3 || syms[2] != 2 {
		t.Fatalf("Symbols() = %v", syms)
	}
}

func TestOverlayRootAndExtends(t *testing.T) {
	root := NewTable()
	ov := root.Overlay()
	ov2 := ov.Overlay()
	if ov.Root() != root || ov2.Root() != root || root.Root() != root {
		t.Fatalf("Root() broken")
	}
	if !ov.Extends(root) || !ov2.Extends(root) || !ov2.Extends(ov) || !root.Extends(root) {
		t.Fatalf("Extends() false negative")
	}
	other := NewTable()
	if ov.Extends(other) || root.Extends(ov) {
		t.Fatalf("Extends() false positive")
	}
}

func TestOverlayExtensionKey(t *testing.T) {
	root := NewTable()
	root.Intern("a")
	if root.ExtensionKey() != "" {
		t.Fatalf("plain table must have empty extension key")
	}
	ov1 := root.Overlay()
	ov1.Intern("x")
	ov1.Intern("y")
	ov2 := root.Overlay()
	ov2.Intern("x")
	ov2.Intern("y")
	if ov1.ExtensionKey() != ov2.ExtensionKey() {
		t.Fatalf("identical overlays must share an extension key")
	}
	ov3 := root.Overlay()
	ov3.Intern("y")
	ov3.Intern("x")
	if ov1.ExtensionKey() == ov3.ExtensionKey() {
		t.Fatalf("different intern orders must differ in extension key")
	}
	root.Intern("grow")
	ov4 := root.Overlay() // different base
	ov4.Intern("x")
	ov4.Intern("y")
	if ov1.ExtensionKey() == ov4.ExtensionKey() {
		t.Fatalf("different bases must differ in extension key")
	}
	// An overlay that interned nothing still differs from the root ("" vs a
	// base marker), so overlay-built analyses never collide with root-built
	// ones in caches keyed by (root, extension key).
	if root.Overlay().ExtensionKey() == "" {
		t.Fatalf("empty overlay key must be distinguishable from the root's")
	}
}

// Overlays must be safe for concurrent interning (a cached Compiled built on
// an overlay serves parallel requests that intern document labels into it)
// and concurrent parent reads.
func TestOverlayConcurrent(t *testing.T) {
	root := NewTable()
	for i := 0; i < 16; i++ {
		root.Intern(fmt.Sprintf("p%d", i))
	}
	ov := root.Overlay()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := ov.Intern(fmt.Sprintf("n%d", i%32))
				if name := ov.Name(s); name != fmt.Sprintf("n%d", i%32) {
					panic("name mismatch: " + name)
				}
				ov.Intern(fmt.Sprintf("p%d", i%16)) // parent hits
				_ = ov.Len()
				_, _ = root.Lookup("p0")
			}
		}(g)
	}
	wg.Wait()
	if root.Len() != 16 {
		t.Fatalf("parent grew to %d under concurrent overlay traffic", root.Len())
	}
	if ov.Len() != 16+32 {
		t.Fatalf("overlay Len() = %d, want %d", ov.Len(), 48)
	}
}
