package automata

import (
	"math/rand"
	"testing"
	"testing/quick"

	"axml/internal/regex"
)

func parse(t *testing.T, tab *regex.Table, src string) *regex.Regex {
	t.Helper()
	r, err := regex.Parse(tab, src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return r
}

func word(tab *regex.Table, names ...string) []regex.Symbol {
	w := make([]regex.Symbol, len(names))
	for i, n := range names {
		w[i] = tab.Intern(n)
	}
	return w
}

func TestFromRegexAccepts(t *testing.T) {
	tab := regex.NewTable()
	r := parse(t, tab, "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
	a := FromRegex(r)
	accept := [][]string{
		{"title", "date", "Get_Temp", "TimeOut"},
		{"title", "date", "temp"},
		{"title", "date", "temp", "exhibit", "exhibit"},
	}
	reject := [][]string{
		{"title", "date"},
		{"title", "date", "temp", "exhibit", "TimeOut"},
		{},
	}
	for _, w := range accept {
		if !a.Accepts(word(tab, w...)) {
			t.Errorf("NFA should accept %v", w)
		}
	}
	for _, w := range reject {
		if a.Accepts(word(tab, w...)) {
			t.Errorf("NFA should reject %v", w)
		}
	}
}

func TestFromRegexStateCount(t *testing.T) {
	tab := regex.NewTable()
	// Glushkov: one state per leaf position plus the start state.
	r := parse(t, tab, "a.(b|c)*")
	if a := FromRegex(r); a.Len() != 4 {
		t.Errorf("states = %d want 4", a.Len())
	}
}

func TestEpsClosure(t *testing.T) {
	a := NewNFA(4, 0)
	a.AddEps(0, 1)
	a.AddEps(1, 2)
	a.AddEps(2, 0) // cycle
	got := a.EpsClosure([]State{0})
	if len(got) != 3 {
		t.Errorf("EpsClosure = %v want 3 states", got)
	}
}

func TestDeterminizeMatchesNFA(t *testing.T) {
	tab := regex.NewTable()
	r := parse(t, tab, "(a|b)*.a.(a|b)") // classically blows up when determinized
	a := FromRegex(r)
	d := Determinize(a, r.Alphabet(nil))
	for _, w := range [][]string{
		{"a", "a"}, {"a", "b"}, {"b", "a", "b"}, {"b"}, {"a"}, {"b", "b", "b"}, {},
	} {
		ws := word(tab, w...)
		if d.Accepts(ws) != a.Accepts(ws) {
			t.Errorf("DFA/NFA disagree on %v", w)
		}
	}
}

func TestCompleteAndComplement(t *testing.T) {
	tab := regex.NewTable()
	r := parse(t, tab, "a.b")
	d := Determinize(FromRegex(r), r.Alphabet(nil))
	comp := d.Complement()
	for _, tc := range []struct {
		w    []string
		want bool
	}{
		{[]string{"a", "b"}, false},
		{[]string{"a"}, true},
		{[]string{"b", "a"}, true},
		{[]string{}, true},
		{[]string{"a", "b", "a"}, true},
	} {
		if got := comp.Accepts(word(tab, tc.w...)); got != tc.want {
			t.Errorf("complement accepts %v = %v want %v", tc.w, got, tc.want)
		}
	}
	// Complement must be complete: every state has every transition.
	for s, row := range comp.Trans {
		for col, to := range row {
			if to == NoState {
				t.Fatalf("complement incomplete at state %d col %d", s, col)
			}
		}
	}
}

func TestComplementHandlesUnknownSymbols(t *testing.T) {
	tab := regex.NewTable()
	r := parse(t, tab, "a")
	comp := ComplementOfRegex(r, r.Alphabet(nil))
	// A symbol never seen during construction must be handled (other column).
	z := tab.Intern("zebra")
	if !comp.Accepts([]regex.Symbol{z}) {
		t.Error("complement should accept unknown symbol word")
	}
	if comp.Accepts(word(tab, "a")) {
		t.Error("complement should reject 'a'")
	}
}

func TestWildcardDeterminization(t *testing.T) {
	tab := regex.NewTable()
	r := parse(t, tab, "a.~!(a|b)")
	d := Determinize(FromRegex(r), r.Alphabet(nil))
	c := tab.Intern("c")
	a := tab.Intern("a")
	if !d.Accepts([]regex.Symbol{a, c}) {
		t.Error("should accept a.c")
	}
	if d.Accepts([]regex.Symbol{a, a}) {
		t.Error("should reject a.a")
	}
	if !d.Accepts([]regex.Symbol{a, tab.Intern("later-interned")}) {
		t.Error("should accept fresh symbol under wildcard")
	}
}

func TestProductOps(t *testing.T) {
	tab := regex.NewTable()
	ra := parse(t, tab, "(a|b)*.a") // ends with a
	rb := parse(t, tab, "a.(a|b)*") // starts with a
	da := Determinize(FromRegex(ra), ra.Alphabet(nil))
	db := Determinize(FromRegex(rb), rb.Alphabet(nil))

	inter := Intersect(da, db)
	union := Union(da, db)
	diff := Difference(da, db)

	cases := []struct {
		w        []string
		inA, inB bool
	}{
		{[]string{"a"}, true, true},
		{[]string{"a", "b", "a"}, true, true},
		{[]string{"b", "a"}, true, false},
		{[]string{"a", "b"}, false, true},
		{[]string{"b"}, false, false},
		{[]string{}, false, false},
	}
	for _, tc := range cases {
		w := word(tab, tc.w...)
		if got := inter.Accepts(w); got != (tc.inA && tc.inB) {
			t.Errorf("intersect %v = %v", tc.w, got)
		}
		if got := union.Accepts(w); got != (tc.inA || tc.inB) {
			t.Errorf("union %v = %v", tc.w, got)
		}
		if got := diff.Accepts(w); got != (tc.inA && !tc.inB) {
			t.Errorf("difference %v = %v", tc.w, got)
		}
	}
}

func TestIsEmptyAndDeadStates(t *testing.T) {
	tab := regex.NewTable()
	ra := parse(t, tab, "a.b")
	rb := parse(t, tab, "b.a")
	da := Determinize(FromRegex(ra), ra.Alphabet(nil))
	db := Determinize(FromRegex(rb), rb.Alphabet(nil))
	if !Intersect(da, db).IsEmpty() {
		t.Error("disjoint languages should intersect to ∅")
	}
	if da.IsEmpty() {
		t.Error("non-empty language reported empty")
	}
	comp := da.Complement()
	dead := comp.DeadStates()
	any := false
	for _, d := range dead {
		any = any || d
	}
	if any {
		t.Error("a complement of a non-universal language has no dead states")
	}
	// In the original completed DFA, the sink is dead.
	completed := da.Complete()
	dead = completed.DeadStates()
	count := 0
	for _, d := range dead {
		if d {
			count++
		}
	}
	if count == 0 {
		t.Error("completed a.b DFA should have dead sink states")
	}
}

func TestEquivalent(t *testing.T) {
	tab := regex.NewTable()
	pairs := []struct {
		x, y string
		want bool
	}{
		{"a|b", "b|a", true},
		{"(a.b)*", "()|a.b.(a.b)*", true},
		{"a*", "a*.a*", true},
		{"a", "a|b", false},
		{"a.b", "a.b.a?", false},
		{"~", "a|b", false}, // wildcard admits unknown symbols
	}
	for _, tc := range pairs {
		rx, ry := parse(t, tab, tc.x), parse(t, tab, tc.y)
		dx := Determinize(FromRegex(rx), rx.Alphabet(nil))
		dy := Determinize(FromRegex(ry), ry.Alphabet(nil))
		if got := Equivalent(dx, dy); got != tc.want {
			t.Errorf("Equivalent(%q, %q) = %v want %v", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestMinimize(t *testing.T) {
	tab := regex.NewTable()
	r := parse(t, tab, "(a|b)*.a.(a|b)")
	d := Determinize(FromRegex(r), r.Alphabet(nil))
	m := d.Minimize()
	if !Equivalent(d, m) {
		t.Fatal("minimized DFA not equivalent")
	}
	if m.NumStates() > d.Complete().NumStates() {
		t.Errorf("minimize grew the machine: %d > %d", m.NumStates(), d.NumStates())
	}
	// The canonical minimal DFA for (a|b)*a(a|b) has 4 states + sink = 5
	// complete states over {a,b} plus the other column behavior.
	if m.NumStates() > 8 {
		t.Errorf("minimal machine suspiciously large: %d", m.NumStates())
	}
	// Idempotence.
	if m2 := m.Minimize(); m2.NumStates() != m.NumStates() {
		t.Errorf("Minimize not idempotent: %d then %d", m.NumStates(), m2.NumStates())
	}
}

func TestMinimizeUniform(t *testing.T) {
	tab := regex.NewTable()
	r := parse(t, tab, "~*") // universal language
	d := Determinize(FromRegex(r), nil)
	m := d.Minimize()
	if m.NumStates() != 1 {
		t.Errorf("universal language should minimize to 1 state, got %d", m.NumStates())
	}
	if !m.Accepts(word(tab, "anything", "goes")) {
		t.Error("universal language rejects a word")
	}
}

// Property: determinization preserves the language.
func TestQuickDeterminizePreservesLanguage(t *testing.T) {
	tab := regex.NewTable()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRegex(rng, tab, 4)
		a := FromRegex(r)
		d := Determinize(a, r.Alphabet(nil))
		for i := 0; i < 10; i++ {
			w := randomWord(rng, tab, 6)
			if a.Accepts(w) != d.Accepts(w) {
				return false
			}
			if regex.Match(r, w) != d.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the complement law — w ∈ L(Ā) iff w ∉ L(A).
func TestQuickComplementLaw(t *testing.T) {
	tab := regex.NewTable()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRegex(rng, tab, 4)
		comp := ComplementOfRegex(r, r.Alphabet(nil))
		for i := 0; i < 10; i++ {
			w := randomWord(rng, tab, 6)
			if regex.Match(r, w) == comp.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: intersect/union/difference agree with boolean composition of
// memberships.
func TestQuickBooleanOps(t *testing.T) {
	tab := regex.NewTable()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rx := randomRegex(rng, tab, 3)
		ry := randomRegex(rng, tab, 3)
		dx := Determinize(FromRegex(rx), rx.Alphabet(nil))
		dy := Determinize(FromRegex(ry), ry.Alphabet(nil))
		inter, uni, diff := Intersect(dx, dy), Union(dx, dy), Difference(dx, dy)
		for i := 0; i < 8; i++ {
			w := randomWord(rng, tab, 5)
			inX, inY := regex.Match(rx, w), regex.Match(ry, w)
			if inter.Accepts(w) != (inX && inY) ||
				uni.Accepts(w) != (inX || inY) ||
				diff.Accepts(w) != (inX && !inY) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Minimize preserves the language and never grows state count.
func TestQuickMinimize(t *testing.T) {
	tab := regex.NewTable()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRegex(rng, tab, 4)
		d := Determinize(FromRegex(r), r.Alphabet(nil))
		m := d.Minimize()
		return Equivalent(d, m) && m.NumStates() <= d.Complete().NumStates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func randomRegex(rng *rand.Rand, tab *regex.Table, depth int) *regex.Regex {
	syms := []string{"a", "b", "c"}
	if depth <= 0 || rng.Intn(4) == 0 {
		return regex.Sym(tab.Intern(syms[rng.Intn(len(syms))]))
	}
	switch rng.Intn(4) {
	case 0:
		return regex.Concat(randomRegex(rng, tab, depth-1), randomRegex(rng, tab, depth-1))
	case 1:
		return regex.Alt(randomRegex(rng, tab, depth-1), randomRegex(rng, tab, depth-1))
	case 2:
		return regex.Star(randomRegex(rng, tab, depth-1))
	default:
		return regex.Opt(randomRegex(rng, tab, depth-1))
	}
}

func randomWord(rng *rand.Rand, tab *regex.Table, maxLen int) []regex.Symbol {
	syms := []string{"a", "b", "c"}
	n := rng.Intn(maxLen + 1)
	w := make([]regex.Symbol, n)
	for i := range w {
		w[i] = tab.Intern(syms[rng.Intn(len(syms))])
	}
	return w
}

func BenchmarkDeterminizeDeterministic(b *testing.B) {
	tab := regex.NewTable()
	r := regex.MustParse(tab, "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
	a := FromRegex(r)
	sigma := r.Alphabet(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Determinize(a, sigma)
	}
}

func BenchmarkComplement(b *testing.B) {
	tab := regex.NewTable()
	r := regex.MustParse(tab, "title.date.temp.(TimeOut|exhibit*)")
	sigma := r.Alphabet(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ComplementOfRegex(r, sigma)
	}
}
