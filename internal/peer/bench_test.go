package peer

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkExchangeHandler drives the full /exchange path in-process — body
// cap, overlay schema parse, cached enforcement, rewriting with local service
// calls, XML serialization — the serving hot path the loadgen harness hits
// over the network. Run with -benchmem; the allocation budget is enforced by
// TestExchangeAllocBudget.
func BenchmarkExchangeHandler(b *testing.B) {
	p := newsPeer(b)
	h := p.Handler()
	body := []byte(identityExchangeXSD)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/exchange/today?mode=safe", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkDocGetHandler measures the read path: repository lookup plus XML
// serialization, no rewriting.
func BenchmarkDocGetHandler(b *testing.B) {
	p := newsPeer(b)
	h := p.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/doc/today", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

// TestExchangeAllocBudget is the allocation regression gate for the serving
// hot path: a warmed /exchange request must stay within budget. The budget
// has headroom over the measured figure (see EXPERIMENTS.md E-L1) so noise
// does not flake CI, while a reintroduced per-node or per-request allocation
// regression (the kind this PR removed) trips it. Skipped under -race, whose
// instrumentation changes allocation counts.
func TestExchangeAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	p := newsPeer(t)
	h := p.Handler()
	body := []byte(identityExchangeXSD)
	run := func() {
		req := httptest.NewRequest(http.MethodPost, "/exchange/today?mode=safe", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
	run() // warm the enforcement cache; the budget is for the steady state
	const budget = 900 // measured ~646 allocs/op warmed (E-L1; WriteTo serializer); ~40% headroom
	if got := testing.AllocsPerRun(50, run); got > budget {
		t.Errorf("warmed /exchange = %.0f allocs/op, budget %d", got, budget)
	}
}
