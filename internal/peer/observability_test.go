package peer

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/invoke"
	"axml/internal/schema"
	"axml/internal/soap"
	"axml/internal/telemetry"
	"axml/internal/telemetry/obslog"
	"axml/internal/wsdl"
)

// syncBuf is a goroutine-safe log sink: requestDone fires inside the
// server goroutine, possibly after the client already saw the response.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestObservabilityOneTraceID is the end-to-end correlation check: a
// client-minted trace ID travels in via traceparent and must surface,
// unchanged, on every observability surface — the structured request
// log line, the /debug/traces span tree, the audit trail, the
// /debug/slow flight record, and the OpenMetrics latency exemplar.
func TestObservabilityOneTraceID(t *testing.T) {
	p := newsPeer(t)
	p.Telemetry = telemetry.NewRegistry()
	logs := &syncBuf{}
	p.Logger = obslog.New(logs, obslog.Info, obslog.JSON)
	p.Flight = telemetry.NewFlight(4, 4)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	clientTrace := telemetry.NewID()
	req, err := http.NewRequest("POST", ts.URL+"/exchange/today?mode=safe", strings.NewReader(exchangeTarget))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/xml")
	req.Header.Set(telemetry.TraceparentHeader, telemetry.FormatTraceparent(clientTrace, telemetry.NewID()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exchange failed: %d %s", resp.StatusCode, body)
	}

	// Surface 1: the JSON request log line carries the client's trace ID.
	var logLine map[string]any
	waitFor(t, "request log line", func() bool {
		for _, line := range strings.Split(logs.String(), "\n") {
			var m map[string]any
			if json.Unmarshal([]byte(line), &m) == nil && m["msg"] == "request" {
				logLine = m
				return true
			}
		}
		return false
	})
	if logLine["trace_id"] != clientTrace {
		t.Errorf("log line trace_id = %v, want %s", logLine["trace_id"], clientTrace)
	}
	if logLine["handler"] != "exchange" || logLine["status"] != float64(200) {
		t.Errorf("log line = %v", logLine)
	}
	for _, k := range []string{"method", "path", "bytes_in", "bytes_out", "duration"} {
		if _, ok := logLine[k]; !ok {
			t.Errorf("log line missing %q: %v", k, logLine)
		}
	}

	// Surface 2: the span tree in /debug/traces joined the client's trace.
	spans := p.Telemetry.Tracer().SpansForTrace(clientTrace)
	byName := map[string]telemetry.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	for _, name := range []string{"http.exchange", "rewrite.safe", "invoke.Get_Temp"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("span %q not under trace %s (got %v)", name, clientTrace, spans)
		}
	}

	// Surface 3: the audit trail stamped the same ID on the call record.
	calls := p.Audit.CallsFor(clientTrace)
	if len(calls) != 1 || calls[0].Func != "Get_Temp" {
		t.Errorf("audit calls for %s = %+v", clientTrace, calls)
	}

	// Surface 4: the flight record (first request always beats the empty
	// threshold) snapshots trace ID, stages, spans, and calls.
	resp, err = http.Get(ts.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	var slow struct {
		Observed uint64                   `json:"observed"`
		Slowest  []telemetry.FlightRecord `json:"slowest"`
	}
	err = json.NewDecoder(resp.Body).Decode(&slow)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(slow.Slowest) != 1 {
		t.Fatalf("slowest = %+v", slow.Slowest)
	}
	rec := slow.Slowest[0]
	if rec.TraceID != clientTrace || rec.Handler != "exchange" {
		t.Errorf("flight record = %+v, want trace %s", rec, clientTrace)
	}
	if len(rec.Stages) == 0 {
		t.Error("flight record has no stage breakdown")
	}
	if len(rec.Spans) == 0 {
		t.Error("flight record has no span snapshot")
	}
	if len(rec.Calls) != 1 || rec.Calls[0].Func != "Get_Temp" {
		t.Errorf("flight record calls = %+v", rec.Calls)
	}

	// Surface 5: the OpenMetrics exposition exemplars the latency bucket
	// with the same trace ID; the default exposition stays exemplar-free.
	req, _ = http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	om, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("OpenMetrics content type = %q", ct)
	}
	if !strings.HasSuffix(string(om), "# EOF\n") {
		t.Error("OpenMetrics exposition not EOF-terminated")
	}
	if !strings.Contains(string(om), `# {trace_id="`+clientTrace+`"}`) {
		t.Errorf("no exemplar with trace %s in OpenMetrics exposition", clientTrace)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(plain), "# {") || strings.Contains(string(plain), "# EOF") {
		t.Error("default exposition must stay exemplar-free 0.0.4 text")
	}
}

// TestTracePropagationAcrossPeers: an outbound peer.Call carries the
// caller's trace ID in a traceparent header, and the serving peer's
// span tree joins that trace — one ID across the invoke boundary.
func TestTracePropagationAcrossPeers(t *testing.T) {
	table := schema.New().Table
	weatherSchema, err := schema.ParseTextShared(schema.NewShared(table), `
elem city = data
elem temp = data
func Get_Temp = city -> temp
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	weather := New("weather", weatherSchema)
	weather.Telemetry = telemetry.NewRegistry()
	must(t, weather.Services.Register(opOf(t, weather, "Get_Temp", func([]*doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}, nil
	})))
	ts := httptest.NewServer(weather.Handler())
	defer ts.Close()
	weather.Endpoint = ts.URL + "/soap"

	reader := New("reader", weatherSchema)
	desc := &wsdl.Description{
		Name: "weather", TargetNamespace: "urn:axml:weather",
		Endpoint: ts.URL + "/soap", Schema: weatherSchema,
	}
	traceID := telemetry.NewID()
	ctx := telemetry.WithTraceID(context.Background(), traceID)
	out, err := reader.CallContext(ctx, desc, "Get_Temp",
		[]*doc.Node{doc.Elem("city", doc.TextNode("Paris"))}, core.Safe)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Label != "temp" {
		t.Fatalf("result = %v", out)
	}
	spans := weather.Telemetry.Tracer().SpansForTrace(traceID)
	var soapSpan *telemetry.SpanRecord
	for i := range spans {
		if spans[i].Name == "http.soap" {
			soapSpan = &spans[i]
		}
	}
	if soapSpan == nil {
		t.Fatalf("serving peer did not join trace %s: %v", traceID, spans)
	}
	if soapSpan.ParentID == "" {
		t.Error("serving peer's root span lost the remote parent link")
	}
}

// TestRetryReinjectsFreshTraceparent extends the cross-peer propagation
// check with a flaky-once remote: the retry policy's second delivery
// attempt must carry a *fresh* traceparent — same trace ID (the hops stay
// one trace), but a re-injected header per attempt, never a stale reuse of
// the first attempt's request. soap.Client builds a new request per call,
// so each attempt passes through InjectTraceContext again; this pins that
// contract against a future "reuse the prepared request" optimization.
func TestRetryReinjectsFreshTraceparent(t *testing.T) {
	table := schema.New().Table
	weatherSchema, err := schema.ParseTextShared(schema.NewShared(table), `
elem city = data
elem temp = data
func Get_Temp = city -> temp
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	weather := New("weather", weatherSchema)
	must(t, weather.Services.Register(opOf(t, weather, "Get_Temp", func([]*doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}, nil
	})))

	// Flaky-once front: fail the first SOAP delivery after recording its
	// traceparent; serve every later attempt normally.
	var (
		mu           sync.Mutex
		traceparents []string
		failed       bool
	)
	inner := weather.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		traceparents = append(traceparents, r.Header.Get(telemetry.TraceparentHeader))
		failFirst := !failed
		failed = true
		mu.Unlock()
		if failFirst {
			http.Error(w, "flaky once", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	inv := core.ApplyPolicies(
		&soap.Invoker{Default: ts.URL + "/soap", Namespace: "urn:axml:weather"},
		[]core.InvokePolicy{invoke.WithRetry(invoke.Retry{Attempts: 3, BaseDelay: time.Millisecond})},
	)
	traceID := telemetry.NewID()
	ctx := telemetry.WithTraceID(context.Background(), traceID)
	out, err := inv.Invoke(ctx, doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Label != "temp" {
		t.Fatalf("result = %v", out)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(traceparents) != 2 {
		t.Fatalf("remote saw %d attempts, want 2 (flaky once + success)", len(traceparents))
	}
	var parents []string
	for i, tp := range traceparents {
		gotTrace, parent, ok := telemetry.ParseTraceparent(tp)
		if !ok {
			t.Fatalf("attempt %d: unparseable traceparent %q", i+1, tp)
		}
		if gotTrace != traceID {
			t.Errorf("attempt %d joined trace %s, want %s", i+1, gotTrace, traceID)
		}
		if parent == "" {
			t.Errorf("attempt %d has no parent span", i+1)
		}
		parents = append(parents, parent)
	}
	if parents[0] == parents[1] {
		t.Errorf("second attempt reused the first attempt's parent span %s — traceparent must be re-injected per attempt", parents[0])
	}
}

// TestObservabilityFailedRequest: failed requests always enter the
// flight recorder's failure ring and log at Warn.
func TestObservabilityFailedRequest(t *testing.T) {
	p := newsPeer(t)
	p.Telemetry = telemetry.NewRegistry()
	logs := &syncBuf{}
	p.Logger = obslog.New(logs, obslog.Info, obslog.JSON)
	p.Flight = telemetry.NewFlight(4, 4)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/exchange/no-such-doc?mode=safe", "text/xml", strings.NewReader(exchangeTarget))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	waitFor(t, "failed flight record", func() bool { return len(p.Flight.Failed()) == 1 })
	rec := p.Flight.Failed()[0]
	if !rec.Failed || rec.Status != http.StatusNotFound {
		t.Errorf("failed record = %+v", rec)
	}
	waitFor(t, "warn log line", func() bool {
		return strings.Contains(logs.String(), `"level":"warn"`)
	})
}

// TestHealthEndpoints: /healthz is pure liveness; /readyz tracks the
// ready/draining lifecycle with 503 on both ends.
func TestHealthEndpoints(t *testing.T) {
	p := newsPeer(t)
	p.Health = NewHealth()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz before ready = %d, want 200 (liveness is not readiness)", code)
	}
	if code, m := get("/readyz"); code != 503 || m["reason"] != "starting" {
		t.Errorf("/readyz before ready = %d %v, want 503 starting", code, m)
	}
	p.Health.SetReady(true)
	if code, m := get("/readyz"); code != 200 || m["ready"] != true {
		t.Errorf("/readyz when ready = %d %v", code, m)
	}
	p.Health.StartDrain()
	if code, m := get("/readyz"); code != 503 || m["reason"] != "draining" {
		t.Errorf("/readyz while draining = %d %v, want 503 draining", code, m)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz while draining = %d, want 200", code)
	}
}

// TestHealthEndpointsDefault: a peer with no Health configured (embedded
// use) answers ready, and the probe routes are never instrumented.
func TestHealthEndpointsDefault(t *testing.T) {
	p := newsPeer(t)
	p.Telemetry = telemetry.NewRegistry()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
	// Probe traffic must not pollute request metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), `handler="healthz"`) {
		t.Error("health probes leaked into request metrics")
	}
}
