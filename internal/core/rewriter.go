package core

import (
	"fmt"
	"strings"

	"axml/internal/doc"
	"axml/internal/regex"
	"axml/internal/schema"
	"axml/internal/telemetry"
)

// Mode selects the rewriting discipline.
type Mode uint8

const (
	// Safe guarantees success before invoking anything (Section 4).
	Safe Mode = iota
	// Possible proceeds when success is merely reachable, backtracking on
	// unlucky returns without un-invoking anything (Section 5).
	Possible
	// Mixed pre-invokes cheap side-effect-free calls to shrink the search,
	// then requires safety for the rest (Section 5, "A Mixed Approach").
	Mixed
)

func (m Mode) String() string {
	switch m {
	case Safe:
		return "safe"
	case Possible:
		return "possible"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// EngineKind selects between the eager Figure 3 analysis and the lazy
// Section 7 variant for every word-level decision.
type EngineKind uint8

const (
	// Eager builds the full reachable product, as in Figure 3.
	Eager EngineKind = iota
	// Lazy explores the product on demand with sink/marked pruning.
	Lazy
)

// Rewriter drives tree-level rewriting of intensional documents into an
// exchange schema: the Schema Enforcement module's core (Section 7).
type Rewriter struct {
	Compiled *Compiled
	// K bounds rewriting depth (Definition 7); typical values are 1–3.
	K int
	// Engine selects the word-level analysis implementation.
	Engine EngineKind
	// Invoker performs service calls; nil Rewriters can only Check.
	Invoker Invoker
	// ValidateReturns verifies every returned forest is an output instance
	// of the invoked function before splicing it (the Schema Enforcement
	// module's receive-side check). Default true in NewRewriter.
	ValidateReturns bool
	// StrictParams makes the rewriting fail when any function node's
	// parameters cannot be rewritten into its input type (the paper's
	// behaviour). When false, such functions are frozen instead: they can
	// still be kept, just never invoked.
	StrictParams bool
	// MaxCalls caps total invocations per rewriting as a runaway valve
	// (recursive services). Default 10000 in NewRewriter.
	MaxCalls int
	// PreInvoke guards the Mixed mode's speculative pass; defaults to
	// "no side effects and zero cost".
	PreInvoke func(*FuncInfo) bool
	// Converters optionally restructure non-conforming service results
	// before the exchange is failed (the paper's "automatic converters"
	// extension); tried in order, first conforming restructuring wins.
	Converters Converters
	// Audit, if set, records every invocation.
	Audit *Audit
	// Events, if set, observes every invocation-policy event (retries,
	// timeouts, breaker transitions…) after rewrite-ID stamping, in
	// addition to Audit and the Instruments counters — the peer hangs
	// its structured event log here.
	Events EventSink
	// Parallelism is the degree of the parallel materialization engine:
	// the maximum number of concurrently executing rewriting branches
	// (sibling subtrees, batched pre-invocations, pipelined safe-mode
	// calls). Values <= 1 select the sequential engine, byte-for-byte
	// identical to the original behavior including audit order.
	Parallelism int
	// Instruments, if set, reports the rewriting pipeline into a telemetry
	// registry (see instruments.go): per-mode latency, keep/invoke/defer/
	// backtrack decisions, per-endpoint call latency, bridged policy events
	// and tracing spans. Nil (the default) is a zero-overhead no-op.
	Instruments *Instruments
	// Streaming opts callers holding serialization targets into the
	// one-pass engine (stream.go): RewriteDocumentStream validates,
	// rewrites and serializes in a single pass with O(depth) buffering,
	// falling back to the tree engine when the mode or schema requires it.
	// The flag is advisory wiring for servers (internal/peer); the
	// streaming entry points work regardless.
	Streaming bool

	ctx *schema.Context
}

// DefaultDepth is the rewriting depth bound selected when RewriterConfig
// leaves Depth zero.
const DefaultDepth = 2

// DefaultMaxCalls is the per-rewriting invocation budget selected when
// RewriterConfig leaves MaxCalls zero.
const DefaultMaxCalls = 10000

// RewriterConfig is the options struct behind NewRewriterWithConfig — the
// growth path that replaced the positional NewRewriter(sender, target, k,
// inv) constructor. The zero value is usable: depth DefaultDepth, eager
// engine, validated returns, strict parameters, a fresh Audit.
type RewriterConfig struct {
	// Depth bounds rewriting depth (Definition 7); 0 selects DefaultDepth.
	Depth int
	// Engine selects the word-level analysis (zero value: Eager).
	Engine EngineKind
	// Invoker performs service calls; nil configures a check-only rewriter.
	Invoker Invoker
	// Policies wrap Invoker with execution middleware (timeouts, retries,
	// circuit breaking — see internal/invoke). Policies[0] is outermost.
	Policies []InvokePolicy
	// SkipValidation disables the receive-side output-instance check
	// (Rewriter.ValidateReturns, inverted so the zero value validates).
	SkipValidation bool
	// LenientParams freezes functions whose parameters cannot be fixed
	// instead of failing (Rewriter.StrictParams, inverted).
	LenientParams bool
	// MaxCalls caps invocations per rewriting; 0 selects DefaultMaxCalls.
	MaxCalls int
	// PreInvoke guards the Mixed mode's speculative pass.
	PreInvoke func(*FuncInfo) bool
	// Converters restructure non-conforming service results.
	Converters Converters
	// Audit receives the invocation trail; nil allocates a fresh one, so a
	// configured rewriter always audits.
	Audit *Audit
	// Events optionally observes stamped policy events (Rewriter.Events).
	Events EventSink
	// Parallelism is the degree of the parallel materialization engine;
	// 0 selects DefaultParallelism (sequential execution).
	Parallelism int
	// Telemetry, if set, instruments the rewriter (and the shared Compiled's
	// word-level analyses) against this registry; see internal/telemetry.
	// Nil leaves every instrumentation path a no-op.
	Telemetry *telemetry.Registry
	// Streaming opts into the one-pass streaming enforcement engine for
	// callers that serialize results (Rewriter.Streaming).
	Streaming bool
}

// NewRewriter builds a rewriter for the (sender, target) schema pair,
// compiling the pair analysis from scratch. It is the thin compatibility
// wrapper over NewRewriterWithConfig kept for the original positional API;
// note it leaves Audit nil (callers set it), unlike the config path.
func NewRewriter(sender, target *schema.Schema, k int, inv Invoker) *Rewriter {
	return NewRewriterFor(Compile(sender, target), k, inv)
}

// NewRewriterFor builds a rewriter over an existing compiled analysis — the
// positional compatibility wrapper; see NewRewriterForConfig.
func NewRewriterFor(c *Compiled, k int, inv Invoker) *Rewriter {
	return &Rewriter{
		Compiled:        c,
		K:               k,
		Invoker:         inv,
		ValidateReturns: true,
		StrictParams:    true,
		MaxCalls:        DefaultMaxCalls,
		ctx:             schema.NewContext(c.Target, c.Sender),
	}
}

// NewRewriterWithConfig builds a rewriter for the (sender, target) schema
// pair from an options struct, compiling the pair analysis from scratch.
// Callers serving many messages over the same pair should compile once (or
// use a CompiledCache) and build per-message rewriters with
// NewRewriterForConfig.
func NewRewriterWithConfig(sender, target *schema.Schema, cfg RewriterConfig) *Rewriter {
	return NewRewriterForConfig(Compile(sender, target), cfg)
}

// NewRewriterForConfig builds a rewriter over an existing compiled analysis
// from an options struct. The rewriter itself is cheap per-message state; the
// Compiled may be shared by any number of concurrent rewriters. Stateful
// policies (circuit breakers, concurrency limits) are instantiated here: to
// share breaker state across messages, wrap one Invoker with ApplyPolicies
// once and pass the result instead.
func NewRewriterForConfig(c *Compiled, cfg RewriterConfig) *Rewriter {
	depth := cfg.Depth
	if depth == 0 {
		depth = DefaultDepth
	}
	maxCalls := cfg.MaxCalls
	if maxCalls == 0 {
		maxCalls = DefaultMaxCalls
	}
	audit := cfg.Audit
	if audit == nil {
		audit = &Audit{}
	}
	parallelism := cfg.Parallelism
	if parallelism == 0 {
		parallelism = DefaultParallelism
	}
	inv := cfg.Invoker
	if inv != nil {
		inv = ApplyPolicies(inv, cfg.Policies)
	}
	var ins *Instruments
	if cfg.Telemetry != nil {
		ins = NewInstruments(cfg.Telemetry)
		c.SetInstruments(ins)
	}
	return &Rewriter{
		Compiled:        c,
		K:               depth,
		Engine:          cfg.Engine,
		Invoker:         inv,
		ValidateReturns: !cfg.SkipValidation,
		StrictParams:    !cfg.LenientParams,
		MaxCalls:        maxCalls,
		PreInvoke:       cfg.PreInvoke,
		Converters:      cfg.Converters,
		Audit:           audit,
		Events:          cfg.Events,
		Parallelism:     parallelism,
		Instruments:     ins,
		Streaming:       cfg.Streaming,
		ctx:             schema.NewContext(c.Target, c.Sender),
	}
}

// Context exposes the validation context (target schema with sender-side
// signatures).
func (rw *Rewriter) Context() *schema.Context { return rw.ctx }

// wordOK dispatches the word-level verdict for the configured engine,
// through the Compiled's word-verdict memo: the verdict depends only on the
// token word, target, k, mode and engine, so repeated words across messages
// skip the automata constructions entirely.
func (rw *Rewriter) wordOK(tokens []Token, target *regex.Regex, mode Mode) (bool, error) {
	return rw.Compiled.WordVerdict(rw.Engine, mode, tokens, target, rw.K)
}

// ---------------------------------------------------------------------------
// Static checking (no invocations): can the forest be rewritten at all?

// CheckDocument reports whether the document can be rewritten into the
// target schema under the given mode, without invoking anything.
func (rw *Rewriter) CheckDocument(root *doc.Node, mode Mode) error {
	typ, err := rw.documentType(root)
	if err != nil {
		return err
	}
	return rw.CheckForest([]*doc.Node{root}, typ, mode)
}

// documentType returns the expected word type of the document root: the
// schema's distinguished root label when declared, else the root's own label.
func (rw *Rewriter) documentType(root *doc.Node) (*regex.Regex, error) {
	label := rw.Compiled.Target.Root
	if label == "" {
		if root.Kind != doc.Element {
			return nil, &NotSafeError{Msg: "document root is a function node and the target schema declares no root label"}
		}
		label = root.Label
	}
	if rw.Compiled.Target.Labels[label] == nil {
		return nil, &NotSafeError{Msg: fmt.Sprintf("root label %q is not declared by the target schema", label)}
	}
	return regex.Sym(rw.Compiled.Table.Intern(label)), nil
}

// CheckForest reports whether the forest can be rewritten into the word type
// typ (with every subtree an instance of the target schema), statically.
func (rw *Rewriter) CheckForest(forest []*doc.Node, typ *regex.Regex, mode Mode) error {
	sc := &staticCheck{rw: rw, mode: mode, paramsOK: map[*doc.Node]bool{}}
	return sc.forest(forest, typ, nil)
}

type staticCheck struct {
	rw       *Rewriter
	mode     Mode
	paramsOK map[*doc.Node]bool
	// scratch backs tokens() across the whole traversal: each word check
	// fully consumes its token slice before the next one is built (the word
	// engines never retain it), so one allocation serves every forest.
	scratch []Token
}

// forest checks one forest against a word type: parameters bottom-up, then
// the root-label word, then each element subtree top-down.
func (sc *staticCheck) forest(forest []*doc.Node, typ *regex.Regex, path []string) error {
	for _, tree := range forest {
		for _, f := range doc.FuncsBottomUp(tree) {
			ok, err := sc.funcParams(f, path)
			if err != nil {
				return err
			}
			sc.paramsOK[f] = ok
		}
	}
	tokens := sc.tokens(forest)
	ok, err := sc.rw.wordOK(tokens, typ, sc.mode)
	if err != nil {
		return err
	}
	if !ok {
		return &NotSafeError{
			Path: pathString(path),
			Msg: fmt.Sprintf("word %v does not %s-rewrite into %s within depth %d",
				forestLabels(forest), sc.mode, typ.String(sc.rw.Compiled.Table), sc.rw.K),
		}
	}
	for i, tree := range forest {
		if tree.Kind == doc.Element {
			if err := sc.element(tree, indexedPath(path, tree.Label, i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// funcParams decides whether f's parameters can be rewritten into its input
// type. Inner functions were memoized first (bottom-up order).
func (sc *staticCheck) funcParams(f *doc.Node, path []string) (bool, error) {
	if ok, done := sc.paramsOK[f]; done {
		return ok, nil
	}
	fail := func(msg string) (bool, error) {
		if sc.rw.StrictParams {
			return false, &NotSafeError{Path: pathString(path), Msg: msg}
		}
		return false, nil
	}
	c := sc.rw.Compiled
	in, isData, exists := c.InputType(c.Table.Intern(f.Label))
	if !exists {
		return fail(fmt.Sprintf("function %q is not declared by either schema", f.Label))
	}
	if isData {
		if !sc.dataChildrenOK(f.Children) {
			return fail(fmt.Sprintf("parameters of %q cannot become atomic data", f.Label))
		}
		return true, nil
	}
	// Rewriting the params must not consult the global failure path: use a
	// sub-check whose verdict freezes f instead of failing, unless strict.
	sub := &staticCheck{rw: sc.rw, mode: sc.mode, paramsOK: sc.paramsOK}
	if err := sub.forest(f.Children, in, childPath(path, "@"+f.Label)); err != nil {
		if sc.rw.StrictParams {
			return false, err
		}
		return false, nil
	}
	return true, nil
}

// dataChildrenOK: a forest collapses to atomic data iff every member is a
// text node or an invocable function returning atomic data whose own
// parameters are fine.
func (sc *staticCheck) dataChildrenOK(children []*doc.Node) bool {
	c := sc.rw.Compiled
	for _, ch := range children {
		switch ch.Kind {
		case doc.Text:
			continue
		case doc.Func:
			fi := c.Func(c.Table.Intern(ch.Label))
			if fi == nil || !fi.Invocable || fi.Out != nil || sc.rw.K < 1 {
				return false
			}
			if ok := sc.paramsOK[ch]; !ok {
				// May not have been computed yet if called outside the
				// bottom-up sweep; compute on demand.
				ok2, err := sc.funcParams(ch, nil)
				if err != nil || !ok2 {
					return false
				}
				sc.paramsOK[ch] = ok2
			}
		default:
			return false
		}
	}
	return true
}

// element checks one element subtree top-down.
func (sc *staticCheck) element(e *doc.Node, path []string) error {
	c := sc.rw.Compiled
	content, isData, declared := c.ContentModel(e.Label)
	if !declared {
		if sc.rw.ctx.Strict {
			return &NotSafeError{Path: pathString(path), Msg: fmt.Sprintf("element %q is not declared by the target schema", e.Label)}
		}
		return nil // wildcard territory: unconstrained
	}
	if isData {
		if !sc.dataChildrenOK(e.Children) {
			return &NotSafeError{Path: pathString(path), Msg: fmt.Sprintf("data element %q contains children that cannot become atomic data", e.Label)}
		}
		return nil
	}
	// Non-text structural check mirrors validation: stray text is fatal.
	for _, ch := range e.Children {
		if ch.Kind == doc.Text && strings.TrimSpace(ch.Value) != "" {
			return &NotSafeError{Path: pathString(path), Msg: fmt.Sprintf("element %q has structured content but contains text", e.Label)}
		}
	}
	tokens := sc.tokens(e.Children)
	ok, err := sc.rw.wordOK(tokens, content, sc.mode)
	if err != nil {
		return err
	}
	if !ok {
		return &NotSafeError{
			Path: pathString(path),
			Msg: fmt.Sprintf("children %v do not %s-rewrite into %s within depth %d",
				e.ChildLabels(), sc.mode, content.String(c.Table), sc.rw.K),
		}
	}
	for i, ch := range e.Children {
		if ch.Kind == doc.Element {
			if err := sc.element(ch, indexedPath(path, ch.Label, i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// tokens builds word tokens from a forest, freezing functions whose
// parameters cannot be fixed and resolving pattern admissibility: a function
// token is frozen when it cannot be invoked.
func (sc *staticCheck) tokens(forest []*doc.Node) []Token {
	c := sc.rw.Compiled
	out := sc.scratch[:0]
	defer func() { sc.scratch = out }()
	for _, ch := range forest {
		if ch.Kind == doc.Text {
			continue
		}
		tok := Token{Sym: c.Table.Intern(ch.Label), Node: ch}
		if ch.Kind == doc.Func {
			if ok := sc.paramsOK[ch]; !ok {
				tok.Frozen = true
			}
		}
		out = append(out, tok)
	}
	return out
}

// pathString renders a node path as /seg/seg/... — it sits on every error
// and event path, so it builds the result in one exactly-sized allocation
// instead of the Join-plus-concatenation it replaced.
func pathString(path []string) string {
	if len(path) == 0 {
		return ""
	}
	n := len(path) // one '/' before each segment
	for _, seg := range path {
		n += len(seg)
	}
	var b strings.Builder
	b.Grow(n)
	for _, seg := range path {
		b.WriteByte('/')
		b.WriteString(seg)
	}
	return b.String()
}

// forestLabels renders the non-text labels of a forest as "[a b c]" — the
// same shape fmt's %v gave the label slice it replaced, without building the
// intermediate slice.
func forestLabels(forest []*doc.Node) string {
	n := 2
	for _, node := range forest {
		if node.Kind != doc.Text {
			n += len(node.Label) + 1
		}
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteByte('[')
	first := true
	for _, node := range forest {
		if node.Kind == doc.Text {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		b.WriteString(node.Label)
	}
	b.WriteByte(']')
	return b.String()
}
