// Package peer implements an Active XML peer (Section 7 of the paper): a
// repository of intensional documents, services defined over the repository,
// SOAP exchange with other peers, and the *Schema Enforcement* module, which
// applies the safe/possible/mixed rewriting algorithms of internal/core to
// every document sent, every parameter list received, and every result
// returned.
package peer

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"axml/internal/doc"
	"axml/internal/xmlio"
)

// Repository stores named intensional documents. It is safe for concurrent
// use; documents are cloned on the way in and out so that callers can never
// mutate stored state behind the lock.
type Repository struct {
	mu   sync.RWMutex
	docs map[string]*doc.Node
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{docs: make(map[string]*doc.Node)}
}

// ValidateDocName rejects names that cannot safely become file names:
// empty, "." / "..", or anything containing a path separator. SaveDir joins
// names onto a directory, so an unchecked "../evil" would escape it.
func ValidateDocName(name string) error {
	switch {
	case name == "":
		return fmt.Errorf("peer: document name must not be empty")
	case name == "." || name == "..":
		return fmt.Errorf("peer: %q is not a valid document name", name)
	case strings.ContainsAny(name, `/\`):
		return fmt.Errorf("peer: document name %q must not contain path separators", name)
	}
	return nil
}

// Put stores a document under a name (cloned). Names containing path
// separators are rejected — they would let SaveDir write outside its
// directory.
func (r *Repository) Put(name string, d *doc.Node) error {
	if err := ValidateDocName(name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.docs[name] = d.Clone()
	return nil
}

// Get returns a clone of the named document.
func (r *Repository) Get(name string) (*doc.Node, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.docs[name]
	if !ok {
		return nil, false
	}
	return d.Clone(), true
}

// Update applies fn to the stored document under the write lock; fn may
// return a replacement (or the mutated original).
func (r *Repository) Update(name string, fn func(*doc.Node) (*doc.Node, error)) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.docs[name]
	if !ok {
		return fmt.Errorf("peer: no document %q", name)
	}
	next, err := fn(d)
	if err != nil {
		return err
	}
	r.docs[name] = next
	return nil
}

// Delete removes a document.
func (r *Repository) Delete(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.docs, name)
}

// Names lists stored document names, sorted.
func (r *Repository) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.docs))
	for name := range r.docs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of stored documents.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.docs)
}

// SaveDir persists every document as <name>.xml in dir (created if needed).
func (r *Repository) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("peer: %w", err)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, d := range r.docs {
		if err := ValidateDocName(name); err != nil {
			return err // defense in depth: Put already rejects these
		}
		s, err := xmlio.String(d)
		if err != nil {
			return fmt.Errorf("peer: serializing %q: %w", name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".xml"), []byte(s), 0o644); err != nil {
			return fmt.Errorf("peer: %w", err)
		}
	}
	return nil
}

// LoadDir loads every *.xml file of dir into the repository, keyed by file
// base name.
func (r *Repository) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("peer: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return fmt.Errorf("peer: %w", err)
		}
		d, err := xmlio.ParseString(string(data))
		if err != nil {
			return fmt.Errorf("peer: parsing %s: %w", e.Name(), err)
		}
		if err := r.Put(strings.TrimSuffix(e.Name(), ".xml"), d); err != nil {
			return err
		}
	}
	return nil
}
