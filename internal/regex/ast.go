package regex

import (
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Op identifies the shape of a Regex node.
type Op uint8

const (
	// OpNever is the empty language ∅ (matches nothing).
	OpNever Op = iota
	// OpEmpty is the empty word ε (matches only the empty word).
	OpEmpty
	// OpSym matches exactly one occurrence of a single symbol.
	OpSym
	// OpClass matches exactly one occurrence of any symbol in a Class
	// (wildcards and namespace exclusions).
	OpClass
	// OpConcat matches the concatenation of its subexpressions.
	OpConcat
	// OpAlt matches any one of its subexpressions.
	OpAlt
	// OpStar matches zero or more repetitions of its single subexpression.
	OpStar
)

// Regex is an immutable regular expression over Symbols. Build values only
// through the constructor functions; they maintain the canonical form
// invariants that the rest of the package relies on:
//
//   - Concat and Alt nodes are flattened (no nested same-op children),
//     have ≥ 2 children, and contain no ε (Concat) / ∅ (Alt) children;
//   - ∅ absorbs concatenation; Alt children are deduplicated by Key;
//   - Star is never applied to ε, ∅, or another Star.
//
// The zero value is ∅.
type Regex struct {
	Op   Op
	Sym  Symbol                 // valid when Op == OpSym
	Cls  Class                  // valid when Op == OpClass
	Subs []*Regex                // valid when Op is OpConcat, OpAlt (len ≥ 2) or OpStar (len 1)
	key  atomic.Pointer[string]  // memoized canonical key
	pos  atomic.Pointer[PosInfo] // memoized Glushkov analysis (see Positions)
}

var (
	never = &Regex{Op: OpNever}
	empty = &Regex{Op: OpEmpty}
)

// Never returns ∅, the empty language.
func Never() *Regex { return never }

// Empty returns ε, the empty-word language.
func Empty() *Regex { return empty }

// Sym returns the single-symbol expression.
func Sym(s Symbol) *Regex { return &Regex{Op: OpSym, Sym: s} }

// ClassOf returns an expression matching one occurrence of any symbol in c.
// An empty class normalizes to ∅.
func ClassOf(c Class) *Regex {
	if c.IsEmpty() {
		return never
	}
	return &Regex{Op: OpClass, Cls: c}
}

// Any returns the wildcard expression matching any single symbol.
func Any() *Regex { return ClassOf(AnyClass()) }

// Concat returns the concatenation of the given expressions, in canonical
// form. Concat() is ε.
func Concat(rs ...*Regex) *Regex {
	subs := make([]*Regex, 0, len(rs))
	for _, r := range rs {
		switch r.Op {
		case OpNever:
			return never
		case OpEmpty:
			// drop
		case OpConcat:
			subs = append(subs, r.Subs...)
		default:
			subs = append(subs, r)
		}
	}
	switch len(subs) {
	case 0:
		return empty
	case 1:
		return subs[0]
	}
	return &Regex{Op: OpConcat, Subs: subs}
}

// Alt returns the union of the given expressions, in canonical form
// (flattened, ∅ dropped, duplicates removed). Alt() is ∅.
func Alt(rs ...*Regex) *Regex {
	subs := make([]*Regex, 0, len(rs))
	seen := make(map[string]bool, len(rs))
	var add func(r *Regex)
	add = func(r *Regex) {
		switch r.Op {
		case OpNever:
			return
		case OpAlt:
			for _, s := range r.Subs {
				add(s)
			}
		default:
			k := r.Key()
			if !seen[k] {
				seen[k] = true
				subs = append(subs, r)
			}
		}
	}
	for _, r := range rs {
		add(r)
	}
	switch len(subs) {
	case 0:
		return never
	case 1:
		return subs[0]
	}
	return &Regex{Op: OpAlt, Subs: subs}
}

// Star returns r*, in canonical form.
func Star(r *Regex) *Regex {
	switch r.Op {
	case OpNever, OpEmpty:
		return empty
	case OpStar:
		return r
	}
	return &Regex{Op: OpStar, Subs: []*Regex{r}}
}

// Plus returns r+ ≡ r.r*.
func Plus(r *Regex) *Regex { return Concat(r, Star(r)) }

// Opt returns r? ≡ (r|ε).
func Opt(r *Regex) *Regex { return Alt(r, empty) }

// Unbounded marks a Repeat with no upper bound (XML Schema
// maxOccurs="unbounded").
const Unbounded = -1

// Repeat returns r{min,max}. max == Unbounded means no upper bound.
// Repeat panics if min < 0 or (max != Unbounded && max < min).
func Repeat(r *Regex, min, max int) *Regex {
	if min < 0 || (max != Unbounded && max < min) {
		panic("regex: invalid repetition bounds")
	}
	parts := make([]*Regex, 0, min+1)
	for i := 0; i < min; i++ {
		parts = append(parts, r)
	}
	switch {
	case max == Unbounded:
		parts = append(parts, Star(r))
	default:
		// (r?){max-min} appended as nested options so that e.g. r{0,2}
		// is (r(r)?)? rather than r?r? — both are correct; the nested
		// form preserves one-unambiguity of deterministic content models.
		opt := Empty()
		for i := 0; i < max-min; i++ {
			opt = Opt(Concat(r, opt))
		}
		parts = append(parts, opt)
	}
	return Concat(parts...)
}

// Nullable reports whether the language of r contains the empty word.
func (r *Regex) Nullable() bool {
	switch r.Op {
	case OpEmpty:
		return true
	case OpNever, OpSym, OpClass:
		return false
	case OpStar:
		return true
	case OpConcat:
		for _, s := range r.Subs {
			if !s.Nullable() {
				return false
			}
		}
		return true
	case OpAlt:
		for _, s := range r.Subs {
			if s.Nullable() {
				return true
			}
		}
		return false
	}
	panic("regex: bad op")
}

// IsNever reports whether r is the canonical empty language ∅. Because the
// constructors propagate ∅, this is a complete emptiness test for values
// built through them.
func (r *Regex) IsNever() bool { return r.Op == OpNever }

// Key returns a canonical string key for r: two structurally equal
// expressions have equal keys. Keys are memoized and used as hash-map
// identities for derivative-based DFA states.
func (r *Regex) Key() string {
	if k := r.key.Load(); k != nil {
		return *k
	}
	var b strings.Builder
	r.writeKey(&b)
	// Memoizing on a shared node is safe: Regex values are immutable after
	// construction and the computed key is deterministic, so racing writers
	// publish identical strings through the atomic pointer.
	k := b.String()
	r.key.Store(&k)
	return k
}

func (r *Regex) writeKey(b *strings.Builder) {
	switch r.Op {
	case OpNever:
		b.WriteByte('0')
	case OpEmpty:
		b.WriteByte('1')
	case OpSym:
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(int(r.Sym)))
	case OpClass:
		b.WriteByte('c')
		if r.Cls.Negated {
			b.WriteByte('!')
		}
		for _, s := range r.Cls.Syms {
			b.WriteString(strconv.Itoa(int(s)))
			b.WriteByte(',')
		}
	case OpConcat:
		b.WriteByte('(')
		for _, s := range r.Subs {
			s.writeKey(b)
			b.WriteByte('.')
		}
		b.WriteByte(')')
	case OpAlt:
		b.WriteByte('[')
		// Children order is semantically irrelevant for Alt; sort keys so
		// that a|b and b|a share a key.
		keys := make([]string, len(r.Subs))
		for i, s := range r.Subs {
			keys[i] = s.Key()
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte('|')
		}
		b.WriteByte(']')
	case OpStar:
		b.WriteByte('*')
		r.Subs[0].writeKey(b)
	}
}

// Equal reports whether r and s denote structurally equal expressions
// (modulo Alt child order). It is *not* a language-equivalence test; see
// automata.Equivalent for that.
func (r *Regex) Equal(s *Regex) bool { return r == s || r.Key() == s.Key() }

// Alphabet appends to dst every symbol that appears in r (in leaves or in
// class sets, including negated ones) and returns the extended slice,
// sorted and deduplicated.
func (r *Regex) Alphabet(dst []Symbol) []Symbol {
	var walk func(r *Regex)
	walk = func(r *Regex) {
		switch r.Op {
		case OpSym:
			dst = append(dst, r.Sym)
		case OpClass:
			dst = append(dst, r.Cls.Syms...)
		case OpConcat, OpAlt, OpStar:
			for _, s := range r.Subs {
				walk(s)
			}
		}
	}
	walk(r)
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	return dedupSymbols(dst)
}

// HasWildcard reports whether r contains a negated class (a leaf that can
// match symbols outside any fixed alphabet).
func (r *Regex) HasWildcard() bool {
	switch r.Op {
	case OpClass:
		return r.Cls.Negated
	case OpConcat, OpAlt, OpStar:
		for _, s := range r.Subs {
			if s.HasWildcard() {
				return true
			}
		}
	}
	return false
}

// Size returns the number of nodes in r, a convenient measure of schema
// size for the complexity experiments.
func (r *Regex) Size() int {
	n := 1
	for _, s := range r.Subs {
		n += s.Size()
	}
	return n
}
