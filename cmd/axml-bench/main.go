// Command axml-bench regenerates the paper's figures and analytical claims
// as tables (the E-* experiment index of DESIGN.md / EXPERIMENTS.md).
//
//	axml-bench             # run everything
//	axml-bench -run lazy   # run experiments whose id contains "lazy"
//	axml-bench -list       # list experiment ids
//	axml-bench -invoke out.json  # benchmark the invocation policy chain
//	axml-bench -parallel out.json -min-speedup 2  # parallel-engine smoke gate
//	axml-bench -telemetry out.json -max-overhead 5  # telemetry overhead gate
//	axml-bench -wal out.json  # durable-repository put cost per WAL sync mode
//	axml-bench -store out.json  # Put/Get cost per storage backend (mem/wal/disk)
//	axml-bench -stream out.json -max-buffered-frac 0.1  # streaming vs tree
//	                             enforcement on a ~1MiB document
//
// Output is deterministic except for wall-clock timings.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/experiments"
	"axml/internal/invoke"
	"axml/internal/peer"
	"axml/internal/schema"
	"axml/internal/service"
	"axml/internal/soap"
	"axml/internal/store"
	"axml/internal/telemetry"
	"axml/internal/wal"
	"axml/internal/xmlio"
)

func main() {
	runFilter := flag.String("run", "", "only run experiments whose id contains this substring")
	list := flag.Bool("list", false, "list experiment ids and exit")
	invokeOut := flag.String("invoke", "", "benchmark the invocation policy chain and write ns/op JSON to this file")
	parallelOut := flag.String("parallel", "", "benchmark the parallel materialization engine and write the speedup JSON to this file")
	minSpeedup := flag.Float64("min-speedup", 0, "with -parallel or -stream: fail unless the faster configuration beats the baseline by this factor (0 = no gate)")
	telemetryOut := flag.String("telemetry", "", "benchmark instrumented vs uninstrumented enforcement and write the overhead JSON to this file")
	maxOverhead := flag.Float64("max-overhead", 0, "with -telemetry: fail if the overhead exceeds this percentage (0 = no gate)")
	walOut := flag.String("wal", "", "benchmark durable-repository put throughput across WAL sync modes and write the JSON to this file")
	storeOut := flag.String("store", "", "benchmark Put/Get across storage backends (mem, wal, disk) and write the JSON to this file")
	streamOut := flag.String("stream", "", "benchmark streaming vs tree enforcement on a ~1MiB document and write the JSON to this file")
	maxBufferedFrac := flag.Float64("max-buffered-frac", 0, "with -stream: fail if peak buffered bytes exceed this fraction of the document (0 = no gate)")
	flag.Parse()

	if *invokeOut != "" {
		if err := benchInvoke(*invokeOut); err != nil {
			fmt.Fprintln(os.Stderr, "axml-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *parallelOut != "" {
		if err := benchParallel(*parallelOut, *minSpeedup); err != nil {
			fmt.Fprintln(os.Stderr, "axml-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *telemetryOut != "" {
		if err := benchTelemetry(*telemetryOut, *maxOverhead); err != nil {
			fmt.Fprintln(os.Stderr, "axml-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *walOut != "" {
		if err := benchWAL(*walOut); err != nil {
			fmt.Fprintln(os.Stderr, "axml-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *storeOut != "" {
		if err := benchStore(*storeOut); err != nil {
			fmt.Fprintln(os.Stderr, "axml-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *streamOut != "" {
		if err := benchStream(*streamOut, *maxBufferedFrac, *minSpeedup); err != nil {
			fmt.Fprintln(os.Stderr, "axml-bench:", err)
			os.Exit(1)
		}
		return
	}

	all := experiments.All()
	if *list {
		for _, t := range all {
			fmt.Printf("%-20s %s\n", t.ID, t.Title)
		}
		return
	}
	ran := 0
	for _, t := range all {
		if *runFilter != "" && !strings.Contains(t.ID, *runFilter) {
			continue
		}
		t.Fprint(os.Stdout)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "axml-bench: no experiment matches %q\n", *runFilter)
		os.Exit(1)
	}
}

// benchInvoke measures the per-call overhead of the policy chain on the
// success path: a bare in-process invoker vs the same invoker behind the full
// default chain (limit + breaker + retry + timeout). The JSON report feeds
// the CI bench-smoke step.
func benchInvoke(path string) error {
	service := core.ContextInvokerFunc(func(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.Elem("temp", doc.TextNode("20"))}, nil
	})
	wrapped := invoke.Chain(service,
		invoke.WithConcurrencyLimit(64),
		invoke.WithBreaker(invoke.Breaker{}),
		invoke.WithRetry(invoke.Retry{Attempts: 3}),
		invoke.WithTimeout(time.Second),
	)
	call := doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris")))
	ctx := context.Background()

	measure := func(inv core.Invoker) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := inv.Invoke(ctx, call); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	bare := measure(service)
	chain := measure(wrapped)

	report := map[string]any{
		"benchmark":           "invoke-policy-chain",
		"bare_ns_per_op":      bare.NsPerOp(),
		"policy_ns_per_op":    chain.NsPerOp(),
		"overhead_ns_per_op":  chain.NsPerOp() - bare.NsPerOp(),
		"bare_iterations":     bare.N,
		"policy_iterations":   chain.N,
		"policy_allocs_op":    chain.AllocsPerOp(),
		"bare_allocs_op":      bare.AllocsPerOp(),
		"chain":               "limit(64) > breaker > retry(3) > timeout(1s)",
		"go_max_procs_note":   "single-goroutine success path; contention not measured here",
		"generated_by_flag":   "-invoke",
		"ns_per_op_unit_note": "lower is better; overhead is the policy tax per successful call",
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("invoke benchmark: bare %d ns/op, policy chain %d ns/op -> %s\n",
		bare.NsPerOp(), chain.NsPerOp(), path)
	return nil
}

// benchTelemetry measures what full instrumentation costs on the
// BenchmarkPeerEnforcement workload (E-C8): one SOAP call whose response
// enforcement materializes a nested service call, over HTTP. It runs the
// workload with no registry and with a live registry (metrics + spans +
// per-handler HTTP instrumentation) in paired rounds: each round times
// both configurations back to back, alternating which goes first, and
// the reported overhead is the median of the per-round ratios. Pairing
// means slow-machine phases (a neighbour's GC, frequency scaling)
// contaminate both sides of a round alike, and the median discards the
// rounds a load burst split; a min-vs-min comparison proved fragile here
// because a burst covering only one side's fastest round skews it by
// more than the effect being measured. The gate is the telemetry layer's
// budget: the no-op paths must keep uninstrumented peers free, and the
// instrumented path must stay within maxOverheadPct.
func benchTelemetry(path string, maxOverheadPct float64) error {
	const rounds = 11
	setup := func(reg *telemetry.Registry) (*soap.Client, func(), error) {
		p, err := benchPeer()
		if err != nil {
			return nil, nil, err
		}
		p.Telemetry = reg
		ts := httptest.NewServer(p.Handler())
		return &soap.Client{Endpoint: ts.URL + "/soap", Namespace: "urn:axml:bench"}, ts.Close, nil
	}
	round := func(client *soap.Client) (int64, error) {
		var callErr error
		res := testing.Benchmark(func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				out, err := client.Call("Front", []*doc.Node{doc.TextNode("q")})
				if err != nil {
					callErr = err
					b.Fatal(err)
				}
				if len(out) != 1 || out[0].HasFuncs() {
					callErr = fmt.Errorf("enforcement did not materialize")
					b.Fatal(callErr)
				}
			}
		})
		return res.NsPerOp(), callErr
	}
	bareClient, bareClose, err := setup(nil)
	if err != nil {
		return err
	}
	defer bareClose()
	insClient, insClose, err := setup(telemetry.NewRegistry())
	if err != nil {
		return err
	}
	defer insClose()
	var bare, instrumented int64
	ratios := make([]float64, 0, rounds)
	for i := 0; i < rounds; i++ {
		first, second := bareClient, insClient
		if i%2 == 1 {
			first, second = insClient, bareClient
		}
		f, err := round(first)
		if err != nil {
			return err
		}
		s, err := round(second)
		if err != nil {
			return err
		}
		b, n := f, s
		if i%2 == 1 {
			b, n = s, f
		}
		ratios = append(ratios, float64(n)/float64(b))
		if bare == 0 || b < bare {
			bare = b
		}
		if instrumented == 0 || n < instrumented {
			instrumented = n
		}
	}
	sort.Float64s(ratios)
	overheadPct := (ratios[len(ratios)/2] - 1) * 100
	report := map[string]any{
		"benchmark":            "telemetry-overhead",
		"workload":             "peer-enforcement (E-C8): SOAP Front call with enforced nested Get_Temp",
		"rounds":               rounds,
		"bare_ns_per_op":       bare,
		"telemetry_ns_per_op":  instrumented,
		"overhead_pct":         overheadPct,
		"max_overhead_pct":     maxOverheadPct,
		"generated_by_flag":    "-telemetry",
		"measurement_note":     "overhead_pct is the median of per-round instrumented/bare ratios (paired, order-alternated); ns/op fields are the fastest round of each side",
		"instrumented_surface": "pipeline metrics, spans, per-handler HTTP metrics, cache scrape series",
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("telemetry benchmark: bare %d ns/op, instrumented %d ns/op -> %.2f%% overhead -> %s\n",
		bare, instrumented, overheadPct, path)
	if maxOverheadPct > 0 && overheadPct > maxOverheadPct {
		return fmt.Errorf("telemetry overhead %.2f%% exceeds budget %.2f%%", overheadPct, maxOverheadPct)
	}
	return nil
}

// benchWAL measures what durability costs on the Put path (E-D1): the same
// 128-name put workload against a plain in-memory repository and against
// DurableRepository under each WAL sync mode. SyncAlways pays one fsync per
// acknowledged mutation, so the gap between it and "none" is essentially the
// disk's flush latency; "interval" amortizes the flush into a 100ms
// background tick and should sit near "none".
func benchWAL(path string) error {
	payload := doc.Elem("page",
		doc.Elem("title", doc.TextNode("bench")),
		doc.Elem("body", doc.TextNode(strings.Repeat("intensional ", 24))))
	measure := func(put func(i int) error) (testing.BenchmarkResult, error) {
		var putErr error
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := put(i); err != nil {
					putErr = err
					b.Fatal(err)
				}
			}
		})
		return res, putErr
	}

	mem := peer.NewRepository()
	base, err := measure(func(i int) error {
		return mem.Put(fmt.Sprintf("doc%03d", i%128), payload)
	})
	if err != nil {
		return err
	}
	report := map[string]any{
		"benchmark":           "wal-put-throughput",
		"workload":            "Put of a ~330-byte document over 128 rotating names, snapshot every 4096",
		"memory_ns_per_op":    base.NsPerOp(),
		"generated_by_flag":   "-wal",
		"ns_per_op_unit_note": "lower is better; memory_ns_per_op is the no-durability baseline",
	}
	fmt.Printf("wal benchmark: in-memory %d ns/op\n", base.NsPerOp())
	for _, mode := range []wal.SyncMode{wal.SyncNone, wal.SyncInterval, wal.SyncAlways} {
		dir, err := os.MkdirTemp("", "axml-bench-wal-")
		if err != nil {
			return err
		}
		d, err := peer.OpenDurable(dir, peer.DurableOptions{Sync: mode, SnapshotEvery: 4096})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		res, err := measure(func(i int) error {
			return d.Put(fmt.Sprintf("doc%03d", i%128), payload)
		})
		st := d.Stats().WAL
		d.Close()
		os.RemoveAll(dir)
		if err != nil {
			return err
		}
		report[mode.String()+"_ns_per_op"] = res.NsPerOp()
		report[mode.String()+"_appended_bytes"] = st.AppendedBytes
		report[mode.String()+"_fsyncs"] = st.Fsyncs
		report[mode.String()+"_snapshots"] = st.Snapshots
		fmt.Printf("wal benchmark: sync=%s %d ns/op (%d appends, %d fsyncs, %d snapshots)\n",
			mode, res.NsPerOp(), st.Appends, st.Fsyncs, st.Snapshots)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wal benchmark -> %s\n", path)
	return nil
}

// benchStore measures what each storage backend charges on the Put and Get
// paths (E-S1): the same ~330-byte document over 512 rotating names against
// the in-memory map, the WAL-backed durable repository (sync=none, so the
// gap is serialization + journalling, not the disk's flush latency), and the
// disk-sharded backend with a 64-document hot cache — an 8x cold majority,
// so its Get number prices a realistic fault mix, reported alongside the
// measured fault rate.
func benchStore(path string) error {
	const names = 512
	payload := doc.Elem("page",
		doc.Elem("title", doc.TextNode("bench")),
		doc.Elem("body", doc.TextNode(strings.Repeat("intensional ", 24))))
	name := func(i int) string { return fmt.Sprintf("doc%03d", i%names) }
	measure := func(op func(i int) error) (testing.BenchmarkResult, error) {
		var opErr error
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := op(i); err != nil {
					opErr = err
					b.Fatal(err)
				}
			}
		})
		return res, opErr
	}

	backends := []struct {
		name string
		open func(dir string) (store.DocStore, error)
	}{
		{store.BackendMem, func(string) (store.DocStore, error) { return store.NewRepository(), nil }},
		{store.BackendWAL, func(dir string) (store.DocStore, error) {
			return store.OpenDurable(dir, store.DurableOptions{Sync: wal.SyncNone, SnapshotEvery: 4096})
		}},
		{store.BackendDisk, func(dir string) (store.DocStore, error) {
			return store.OpenDisk(dir, store.DiskOptions{HotCache: 64, Shards: 16})
		}},
	}
	report := map[string]any{
		"benchmark":           "store-backends",
		"workload":            fmt.Sprintf("Put then uniform Get of a ~330-byte document over %d rotating names", names),
		"disk_hot_cache":      64,
		"generated_by_flag":   "-store",
		"ns_per_op_unit_note": "lower is better; disk Get prices the fault mix of a 64/512 hot cache",
	}
	for _, b := range backends {
		dir, err := os.MkdirTemp("", "axml-bench-store-")
		if err != nil {
			return err
		}
		s, err := b.open(dir)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		put, err := measure(func(i int) error { return s.Put(name(i), payload) })
		if err == nil {
			// Make sure every name exists before the read phase.
			for i := 0; i < names; i++ {
				if err = s.Put(name(i), payload); err != nil {
					break
				}
			}
		}
		var get testing.BenchmarkResult
		if err == nil {
			get, err = measure(func(i int) error {
				if _, ok := s.Get(name(i)); !ok {
					return fmt.Errorf("%s: %s vanished", b.name, name(i))
				}
				return nil
			})
		}
		st := s.Stats()
		s.Close()
		os.RemoveAll(dir)
		if err != nil {
			return err
		}
		report[b.name+"_put_ns_per_op"] = put.NsPerOp()
		report[b.name+"_get_ns_per_op"] = get.NsPerOp()
		line := fmt.Sprintf("store benchmark: %-4s put %d ns/op, get %d ns/op", b.name, put.NsPerOp(), get.NsPerOp())
		if st.Disk != nil {
			faultRate := 0.0
			if total := st.Disk.Hits + st.Disk.Faults; total > 0 {
				faultRate = float64(st.Disk.Faults) / float64(total)
			}
			report["disk_fault_rate"] = faultRate
			report["disk_faults"] = st.Disk.Faults
			report["disk_hits"] = st.Disk.Hits
			report["disk_evictions"] = st.Disk.Evictions
			line += fmt.Sprintf(" (fault rate %.2f, %d evictions)", faultRate, st.Disk.Evictions)
		}
		fmt.Println(line)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("store benchmark -> %s\n", path)
	return nil
}

// benchPeer rebuilds the BenchmarkPeerEnforcement fixture: a peer whose
// Front operation returns a page holding an unmaterialized Get_Temp call
// that response enforcement must invoke.
func benchPeer() (*peer.Peer, error) {
	s := schema.MustParseText(`
root page
elem page = title.temp
elem title = data
elem temp = data
elem city = data
func Get_Temp = city -> temp
func Front = data -> page
`, nil)
	p := peer.New("bench", s)
	err := p.Services.Register(&service.Operation{
		Name: "Get_Temp", Def: s.Funcs["Get_Temp"],
		Handler: func([]*doc.Node) ([]*doc.Node, error) {
			return []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	err = p.Services.Register(&service.Operation{
		Name: "Front", Def: s.Funcs["Front"],
		Handler: func([]*doc.Node) ([]*doc.Node, error) {
			return []*doc.Node{doc.Elem("page",
				doc.Elem("title", doc.TextNode("t")),
				doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// benchStream compares the streaming enforcement engine against the tree
// engine on a ~1MiB newspaper document with one materializable call near the
// front (E-ST1): the tree path buffers the whole rewritten document before a
// byte leaves, the streaming path holds only the open-element frames and the
// one function island. It verifies the two paths produce identical bytes,
// then reports wall clock, peak buffered bytes, and first-byte latency. The
// gates: peak buffered bytes must stay under maxBufferedFrac of the document
// and the streamed path must not be slower than 1/minSpeedup of the tree
// path.
func benchStream(path string, maxBufferedFrac, minSpeedup float64) error {
	sender := schema.MustParseText(`
root newspaper
elem newspaper = title.date.exhibit*.(Get_Temp|temp)
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.date
func Get_Temp = city -> temp
`, nil)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), `
root newspaper
elem newspaper = title.date.exhibit*.temp
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.date
`, nil)
	if err != nil {
		return fmt.Errorf("target schema: %w", err)
	}
	inv := core.ContextInvokerFunc(func(context.Context, *doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}, nil
	})
	fat := strings.Repeat("x", 900)
	kids := []*doc.Node{
		doc.Elem("title", doc.TextNode("The Sun")),
		doc.Elem("date", doc.TextNode("04/10/2002")),
	}
	for i := 0; i < 1100; i++ {
		kids = append(kids, doc.Elem("exhibit",
			doc.Elem("title", doc.TextNode(fat)),
			doc.Elem("date", doc.TextNode("2002"))))
	}
	// The call sits after the exhibits, so the island the engine must hold
	// is one function node — the long prefix streams straight through.
	kids = append(kids, doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))
	root := doc.Elem("newspaper", kids...)
	rw := core.NewRewriterFor(core.Compile(sender, target), 2, inv)
	ctx := context.Background()

	// Correctness first: the two engines must emit identical bytes.
	out, err := rw.RewriteDocument(root.Clone(), core.Safe)
	if err != nil {
		return fmt.Errorf("tree rewrite: %w", err)
	}
	var treeBytes, streamBytes bytes.Buffer
	if err := xmlio.WriteTo(&treeBytes, out); err != nil {
		return err
	}
	probe, err := rw.RewriteDocumentStream(ctx, root.Clone(), &streamBytes, core.Safe)
	if err != nil {
		return fmt.Errorf("streamed rewrite: %w", err)
	}
	if !probe.Streamed {
		return fmt.Errorf("fixture fell back to the tree engine (%s)", probe.FallbackReason)
	}
	if !bytes.Equal(treeBytes.Bytes(), streamBytes.Bytes()) {
		return fmt.Errorf("streamed output diverges from the tree engine")
	}
	docBytes := treeBytes.Len()
	frac := float64(probe.PeakBufferedBytes) / float64(docBytes)

	const reps = 5
	measure := func(run func(r *doc.Node) error) (time.Duration, error) {
		var total time.Duration
		for i := 0; i < reps; i++ {
			r := root.Clone()
			start := time.Now()
			if err := run(r); err != nil {
				return 0, err
			}
			total += time.Since(start)
		}
		return total / reps, nil
	}
	tree, err := measure(func(r *doc.Node) error {
		out, err := rw.RewriteDocument(r, core.Safe)
		if err != nil {
			return err
		}
		return xmlio.WriteTo(io.Discard, out)
	})
	if err != nil {
		return err
	}
	var firstByte time.Duration
	stream, err := measure(func(r *doc.Node) error {
		res, err := rw.RewriteDocumentStream(ctx, r, io.Discard, core.Safe)
		if err == nil {
			firstByte = res.FirstByte
		}
		return err
	})
	if err != nil {
		return err
	}
	speedup := float64(tree) / float64(stream)

	report := map[string]any{
		"benchmark":           "stream-enforcement",
		"workload":            "~1MiB newspaper, 1100 exhibits then one materializable call (E-ST1)",
		"doc_bytes":           docBytes,
		"peak_buffered_bytes": probe.PeakBufferedBytes,
		"peak_buffered_nodes": probe.PeakBufferedNodes,
		"buffered_frac":       frac,
		"max_buffered_frac":   maxBufferedFrac,
		"tree_ns":             tree.Nanoseconds(),
		"stream_ns":           stream.Nanoseconds(),
		"speedup":             speedup,
		"min_speedup":         minSpeedup,
		"first_byte_ns":       firstByte.Nanoseconds(),
		"byte_identical":      true,
		"generated_by_flag":   "-stream",
		"speedup_unit_note":   "tree wall clock over streamed wall clock; > 1 means streaming is faster",
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("stream benchmark: doc %d B, peak buffered %d B (%.3f), tree %v, streamed %v (%.2fx, first byte %v) -> %s\n",
		docBytes, probe.PeakBufferedBytes, frac, tree, stream, speedup, firstByte, path)
	if maxBufferedFrac > 0 && frac > maxBufferedFrac {
		return fmt.Errorf("peak buffered fraction %.3f exceeds budget %.3f", frac, maxBufferedFrac)
	}
	if minSpeedup > 0 && speedup < minSpeedup {
		return fmt.Errorf("stream speedup %.2fx below required %.2fx", speedup, minSpeedup)
	}
	return nil
}

// benchParallel measures the parallel materialization engine on the E-P1
// fixture — 16 independent calls behind 1ms of injected latency — at degree
// 1 (the sequential engine) and degree 4, and writes the speedup JSON the
// CI smoke step archives. With minSpeedup > 0 it fails unless degree 4 is
// at least that many times faster, guarding against regressions that
// silently serialize the batch.
func benchParallel(path string, minSpeedup float64) error {
	const (
		funcs   = 16
		latency = time.Millisecond
		reps    = 5
	)
	sender, target := experiments.ParallelPair()
	inv := invoke.Chain(experiments.ParallelInvoker(0), invoke.WithLatency(latency))
	measure := func(degree int) (time.Duration, error) {
		rw := core.NewRewriterFor(core.Compile(sender, target), 2, inv)
		rw.Parallelism = degree
		var total time.Duration
		for i := 0; i < reps; i++ {
			root := experiments.ParallelDoc(funcs)
			start := time.Now()
			if _, err := rw.RewriteDocument(root, core.Safe); err != nil {
				return 0, fmt.Errorf("degree %d: %w", degree, err)
			}
			total += time.Since(start)
		}
		return total / reps, nil
	}
	seq, err := measure(1)
	if err != nil {
		return err
	}
	par, err := measure(4)
	if err != nil {
		return err
	}
	speedup := float64(seq) / float64(par)
	report := map[string]any{
		"benchmark":          "parallel-materialize",
		"funcs":              funcs,
		"latency_ms":         latency.Milliseconds(),
		"reps":               reps,
		"degree1_ns":         seq.Nanoseconds(),
		"degree4_ns":         par.Nanoseconds(),
		"speedup":            speedup,
		"min_speedup":        minSpeedup,
		"speedup_unit_note":  "degree-1 wall clock over degree-4 wall clock; higher is better",
		"generated_by_flag":  "-parallel",
		"workload_unit_note": "16 independent calls, 1ms injected latency each (E-P1 fixture)",
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("parallel benchmark: degree 1 %v, degree 4 %v -> %.2fx speedup -> %s\n",
		seq, par, speedup, path)
	if minSpeedup > 0 && speedup < minSpeedup {
		return fmt.Errorf("parallel speedup %.2fx below required %.2fx", speedup, minSpeedup)
	}
	return nil
}
