// Package automata provides the finite-automata toolkit behind the
// intensional-XML rewriting algorithms: Glushkov construction from symbolic
// regular expressions, subset-construction determinization over an effective
// alphabet, completion, complementation, products, Hopcroft minimization and
// language-level equivalence.
//
// Automata here run over interned regex.Symbol alphabets. Edges are labeled
// by regex.Class values so that wildcard content models (<any>, namespace
// exclusions) need no up-front alphabet expansion: determinization handles
// every symbol outside the declared effective alphabet uniformly through a
// designated "other" column, which is sound as long as the effective
// alphabet contains every symbol mentioned by any class in the machine (see
// Determinize).
package automata

import (
	"fmt"
	"sort"

	"axml/internal/regex"
)

// State identifies a state inside one automaton.
type State int32

// NoState marks missing transitions in incomplete DFAs.
const NoState State = -1

// Edge is a transition of an NFA. Either Eps is true (an ε-move) or Cls
// describes the set of symbols the edge consumes.
type Edge struct {
	Eps bool
	Cls regex.Class
	To  State
}

// NFA is a nondeterministic finite automaton with ε-moves.
type NFA struct {
	Start  State
	Accept []bool   // Accept[s] — len(Accept) is the number of states
	Edges  [][]Edge // Edges[s] — outgoing transitions of s
}

// NewNFA returns an NFA with n states and no transitions; no state accepts.
func NewNFA(n int, start State) *NFA {
	return &NFA{Start: start, Accept: make([]bool, n), Edges: make([][]Edge, n)}
}

// Len returns the number of states.
func (a *NFA) Len() int { return len(a.Accept) }

// AddState appends a fresh state and returns it.
func (a *NFA) AddState(accept bool) State {
	a.Accept = append(a.Accept, accept)
	a.Edges = append(a.Edges, nil)
	return State(len(a.Accept) - 1)
}

// AddEdge adds a symbol-class transition.
func (a *NFA) AddEdge(from State, cls regex.Class, to State) {
	a.Edges[from] = append(a.Edges[from], Edge{Cls: cls, To: to})
}

// AddSym adds a single-symbol transition.
func (a *NFA) AddSym(from State, s regex.Symbol, to State) {
	a.AddEdge(from, regex.NewClass(false, s), to)
}

// AddEps adds an ε-transition.
func (a *NFA) AddEps(from, to State) {
	a.Edges[from] = append(a.Edges[from], Edge{Eps: true, To: to})
}

// FromRegex builds the Glushkov position automaton of r: one state per leaf
// position plus a start state, no ε-moves. The automaton is deterministic
// exactly when r is one-unambiguous.
func FromRegex(r *regex.Regex) *NFA {
	info := regex.Positions(r)
	a := NewNFA(len(info.Classes)+1, 0)
	a.Accept[0] = info.Nullable
	for _, p := range info.Last {
		a.Accept[p] = true
	}
	for _, p := range info.First {
		a.AddEdge(0, info.Classes[p-1], State(p))
	}
	for i, fol := range info.Follow {
		for _, q := range fol {
			a.AddEdge(State(i+1), info.Classes[q-1], State(q))
		}
	}
	return a
}

// EpsClosure expands the state set (given as a sorted slice) with everything
// reachable through ε-moves, returning a sorted, deduplicated slice.
func (a *NFA) EpsClosure(states []State) []State {
	seen := make(map[State]bool, len(states))
	stack := append([]State(nil), states...)
	for _, s := range states {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range a.Edges[s] {
			if e.Eps && !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	out := make([]State, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Move returns the ε-closed successor set of states on symbol x.
func (a *NFA) Move(states []State, x regex.Symbol) []State {
	var next []State
	for _, s := range states {
		for _, e := range a.Edges[s] {
			if !e.Eps && e.Cls.Contains(x) {
				next = append(next, e.To)
			}
		}
	}
	return a.EpsClosure(next)
}

// Accepts reports whether the NFA accepts the word.
func (a *NFA) Accepts(word []regex.Symbol) bool {
	cur := a.EpsClosure([]State{a.Start})
	for _, x := range word {
		cur = a.Move(cur, x)
		if len(cur) == 0 {
			return false
		}
	}
	for _, s := range cur {
		if a.Accept[s] {
			return true
		}
	}
	return false
}

// MentionedSymbols returns the sorted set of symbols that occur in any edge
// class of the automaton (including symbols excluded by negated classes).
func (a *NFA) MentionedSymbols() []regex.Symbol {
	var all []regex.Symbol
	for _, edges := range a.Edges {
		for _, e := range edges {
			all = append(all, e.Cls.Syms...)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := all[:0]
	for i, s := range all {
		if i == 0 || s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

// HasWildcardEdges reports whether any transition carries a negated class.
func (a *NFA) HasWildcardEdges() bool {
	for _, edges := range a.Edges {
		for _, e := range edges {
			if !e.Eps && e.Cls.Negated {
				return true
			}
		}
	}
	return false
}

func (a *NFA) String() string {
	return fmt.Sprintf("NFA{states: %d, start: %d}", a.Len(), a.Start)
}
