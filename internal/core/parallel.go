package core

import (
	"context"
	"errors"
	"sync"

	"axml/internal/doc"
	"axml/internal/regex"
)

// This file implements the parallel materialization engine: the paper's
// rewriting discipline only constrains invocation order *within one
// content-model word* (Section 4) — calls sitting in disjoint element
// subtrees, and the whole mixed-mode speculative pass (Section 5), carry no
// ordering obligations at all. The engine exploits exactly that slack:
//
//   - sibling element subtrees rewrite concurrently (each subtree's content
//     models are analyzed in isolation), with document order preserved by
//     slot assignment rather than execution order;
//   - the mixed-mode pre-invocation pass gathers every admissible outermost
//     call and issues them as one concurrent batch, round by round;
//   - safe-mode word rewriting pipelines within a word: the left-to-right
//     scan fixes keep/invoke verdicts without performing any call, then the
//     decided invocations dispatch as one concurrent batch and splice back
//     left-to-right; occurrences arriving inside spliced results — the
//     genuinely dependent positions — are decided in the next round.
//
// Within-word verdicts made while calls are pending are only final when
// they provably coincide with the sequential engine's (see decideParallel);
// dependent positions defer to the next round, so the engine makes exactly
// the decisions the sequential one would, in batches.
//
// Possible mode keeps its sequential within-word loop (backtracking re-reads
// earlier decisions), but still gains subtree- and pre-invoke-level
// concurrency.
//
// Determinism: a parallelism degree of 1 (or 0) takes the sequential code
// paths untouched — byte-for-byte identical trees, errors and audit order.
// At higher degrees, every fan-out buffers its audit (call records and
// policy events) per slot and flushes the buffers in document order, so the
// trail is deterministic for a fixed degree even though execution order is
// not.

// DefaultParallelism is the degree selected when RewriterConfig leaves
// Parallelism zero: sequential execution, the paper's original discipline.
const DefaultParallelism = 1

// parScheduler bounds the number of concurrently executing rewriting tasks.
// It hands out degree-1 extra worker slots; the spawning goroutine always
// counts as the remaining one, running tasks inline when no slot is free, so
// nested fan-outs can never deadlock on the pool.
type parScheduler struct {
	degree int
	slots  chan struct{}
}

// newParScheduler returns nil for degree <= 1: the executor treats a nil
// scheduler as "run the sequential code paths".
func newParScheduler(degree int) *parScheduler {
	if degree <= 1 {
		return nil
	}
	return &parScheduler{degree: degree, slots: make(chan struct{}, degree-1)}
}

// tryAcquire claims a worker slot without blocking.
func (s *parScheduler) tryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *parScheduler) release() { <-s.slots }

// runSlots executes n slot tasks. With no scheduler (or a single slot) it
// degenerates to the sequential loop, stopping at the first error — the
// pre-parallel behavior. With a scheduler it fans the slots out, cancelling
// the remaining ones on the first failure, and flushes each slot's buffered
// audit trail in slot order once all are done. The returned error is the
// first slot's (in document order) whose failure is not a cancellation
// artifact of some other slot's.
func (ex *executor) runSlots(n int, fn func(child *executor, i int) error) error {
	if n == 0 {
		return nil
	}
	sched := ex.st.sched
	if sched == nil || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(ex, i); err != nil {
				return err
			}
		}
		return nil
	}
	cctx, cancel := context.WithCancel(ex.ctx)
	defer cancel()
	bufs := make([]*Audit, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	run := func(i int) {
		if err := cctx.Err(); err != nil {
			errs[i] = err
			return
		}
		child := &executor{rw: ex.rw, ctx: WithEventSink(cctx, bufs[i]), mode: ex.mode,
			audit: bufs[i], st: ex.st}
		if err := fn(child, i); err != nil {
			errs[i] = err
			cancel()
		}
	}
	ins := ex.rw.Instruments
	for i := 0; i < n; i++ {
		bufs[i] = &Audit{}
		if sched.tryAcquire() {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer sched.release()
				ins.taskStart(true)
				defer ins.taskEnd()
				run(i)
			}(i)
		} else {
			ins.taskStart(false)
			run(i)
			ins.taskEnd()
		}
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		ex.flushSlot(bufs[i])
	}
	return firstSlotError(ex.ctx, errs)
}

// flushSlot replays a slot's buffered trail into the parent executor's audit
// and event sink, preserving the slot's internal order.
func (ex *executor) flushSlot(buf *Audit) {
	for _, e := range buf.Events() {
		Emit(ex.ctx, e)
	}
	for _, c := range buf.Calls() {
		ex.audit.Record(c)
	}
}

// firstSlotError picks the error to surface from a fan-out: the first slot,
// in document order, that failed for a reason of its own. Cancellation
// errors are only reported when nothing better exists (or when the whole
// rewriting's context is done, in which case they are the true cause).
func firstSlotError(ctx context.Context, errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if ctx.Err() == nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return first
}

// ---------------------------------------------------------------------------
// Safe-mode within-word pipelining.

// decideParallel is the parallel counterpart of decideFrom for Safe mode: it
// scans left to right fixing keep/invoke verdicts without performing any
// call, dispatches the decided batch concurrently, splices the results back
// left-to-right, and repeats until every position is kept or exhausted.
//
// Verdicts made while earlier positions' calls are pending must coincide
// with the decisions the sequential engine would make after seeing those
// calls' actual results:
//
//   - A keep verdict (wordOK true with the position frozen and every pending
//     call treated as a still-invocable occurrence) quantifies over the
//     pending calls' whole output languages, so it implies the sequential
//     verdict for whatever they actually return. Keeps are always final.
//   - An invoke verdict (wordOK false) is final only while every pending
//     call before the position has a singleton output word-language: then
//     quantifying over its outputs is the same as splicing its one possible
//     word, and the verdict is exactly the sequential one. Once a pending
//     call can answer with more than one word, the safe strategy may need to
//     adapt to the answer (keep a later occurrence on one output, call it on
//     another), so such positions defer to the next round, where they are
//     re-analyzed against the actual spliced results — precisely the word
//     state the sequential engine decides them in.
//
// The deferral rule keeps the engine's decisions — and therefore the final
// tree and the set of calls made — identical to the sequential engine's at
// every degree; only the dispatch order (and so the wall-clock) differs.
// Safe mode never revisits a keep (there is no backtracking), so decisions
// from earlier rounds stand. Every round batches at least the leftmost
// undecided invocation, so the loop terminates.
func (w *wordRun) decideParallel() error {
	ex := w.ex
	for {
		var pending []int
		allSingleton := true
		for j := 0; j < len(w.items); j++ {
			it := w.items[j]
			if it.pending || !ex.callable(it) {
				continue
			}
			it.kept = true
			ok, err := ex.rw.wordOK(w.tokens(), w.typ, ex.mode)
			if err != nil {
				return err
			}
			if ok {
				ex.rw.Instruments.countKeep()
				continue
			}
			it.kept = false
			if len(pending) > 0 && !allSingleton {
				// Dependent position: the verdict could change once the
				// pending calls' actual results are spliced. Leave it
				// undecided for the next round.
				ex.rw.Instruments.countDefer()
				continue
			}
			ex.rw.Instruments.countInvoke()
			it.pending = true
			pending = append(pending, j)
			if !ex.singletonOutput(it.node) {
				allSingleton = false
			}
		}
		if len(pending) == 0 {
			return nil
		}
		ex.rw.Instruments.round(phaseWord, len(pending))
		results := make([][]*doc.Node, len(pending))
		err := ex.runSlots(len(pending), func(child *executor, k int) error {
			it := w.items[pending[k]]
			res, err := child.invoke(it.node, it.depth+1)
			if err != nil {
				return err
			}
			results[k] = res
			return nil
		})
		if err != nil {
			return err
		}
		next := make([]*item, 0, len(w.items))
		k := 0
		for j, it := range w.items {
			if k < len(pending) && pending[k] == j {
				for _, n := range results[k] {
					next = append(next, &item{node: n, depth: it.depth + 1})
					if n.Kind == doc.Func {
						// Output instances conform: parameters arrive
						// materialized.
						ex.markParamsDone(n)
					}
				}
				k++
				continue
			}
			next = append(next, it)
		}
		w.items = next
	}
}

// singletonOutput reports whether the function occurrence's declared output
// type denotes exactly one word of labels (atomic data produces no label
// tokens at all, so data-returning functions count). For such functions,
// quantifying over the output language is the same as splicing the actual
// result, which makes verdicts fixed while the call is in flight exact.
func (ex *executor) singletonOutput(n *doc.Node) bool {
	c := ex.rw.Compiled
	fi := c.Func(c.Table.Intern(n.Label))
	if fi == nil {
		return false
	}
	if fi.Out == nil {
		return true
	}
	return singletonWord(fi.Out)
}

// singletonWord reports whether the regex denotes exactly one word.
// Conservative: classes and unions report false even when their members
// happen to coincide.
func singletonWord(r *regex.Regex) bool {
	switch r.Op {
	case regex.OpEmpty, regex.OpSym:
		return true
	case regex.OpConcat:
		for _, s := range r.Subs {
			if !singletonWord(s) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// ---------------------------------------------------------------------------
// Batched mixed-mode pre-invocation.

// preTask is one admissible outermost call gathered for a pre-invocation
// batch round.
type preTask struct {
	parent *doc.Node // the container whose Children hold the call
	node   *doc.Node
	depth  int
	res    []*doc.Node
	keep   bool // transient failure: leave the occurrence intensional
}

// preInvokeBatch is the parallel mixed-mode speculative pass: round after
// round it gathers every admissible outermost call of the forest (walking
// sequentially, materializing parameters as the sequential pass would),
// issues the round as one concurrent batch through the invocation layer, and
// splices the results in document order. Calls appearing inside results are
// picked up by the next round at depth+1 while the depth bound allows.
func (ex *executor) preInvokeBatch(forest []*doc.Node, depth int, path []string) ([]*doc.Node, error) {
	pred := ex.rw.PreInvoke
	if pred == nil {
		pred = func(fi *FuncInfo) bool { return !fi.SideEffects && fi.Cost == 0 }
	}
	holder := &doc.Node{Kind: doc.Element, Children: forest}
	// depthAt overrides the inherited depth for the roots of spliced
	// results; everything below such a root inherits it during the walk.
	depthAt := map[*doc.Node]int{}
	for {
		var tasks []*preTask
		if err := ex.gatherPre(holder, depth, path, pred, depthAt, &tasks); err != nil {
			return nil, err
		}
		if len(tasks) == 0 {
			return holder.Children, nil
		}
		ex.rw.Instruments.round(phasePre, len(tasks))
		err := ex.runSlots(len(tasks), func(child *executor, k int) error {
			t := tasks[k]
			res, err := child.invoke(t.node, t.depth+1)
			if err != nil {
				if child.ctx.Err() == nil && IsTransientCall(err) {
					// Best-effort pass: a flaky endpoint leaves the call
					// intensional; the safe analysis decides whether the
					// document still rewrites without it.
					child.freeze(t.node)
					Emit(child.ctx, InvokeEvent{Func: t.node.Label, Endpoint: EndpointOf(t.node),
						Kind: EventDegraded, Err: err.Error()})
					t.keep = true
					return nil
				}
				return err
			}
			t.res = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Splice each round's results into their containers, in document
		// order, then let the next gather round see the new occurrences.
		byParent := map[*doc.Node]map[*doc.Node]*preTask{}
		for _, t := range tasks {
			m := byParent[t.parent]
			if m == nil {
				m = map[*doc.Node]*preTask{}
				byParent[t.parent] = m
			}
			m[t.node] = t
		}
		for parent, m := range byParent {
			next := make([]*doc.Node, 0, len(parent.Children))
			for _, ch := range parent.Children {
				t, ok := m[ch]
				if !ok || t.keep {
					next = append(next, ch)
					continue
				}
				for _, r := range t.res {
					depthAt[r] = t.depth + 1
					if r.Kind == doc.Func {
						ex.markParamsDone(r)
					}
					next = append(next, r)
				}
			}
			parent.Children = next
		}
	}
}

// gatherPre walks one container collecting the admissible outermost calls of
// the current round. It mirrors the sequential pass's admission logic:
// depth-bounded, declared, invocable, admitted by the PreInvoke predicate,
// with parameters materialized (sequentially — parameter materialization may
// itself invoke) and not frozen by earlier failures.
func (ex *executor) gatherPre(container *doc.Node, depth int, path []string, pred func(*FuncInfo) bool, depthAt map[*doc.Node]int, tasks *[]*preTask) error {
	c := ex.rw.Compiled
	for _, n := range container.Children {
		d := depth
		if over, ok := depthAt[n]; ok {
			d = over
		}
		if n.Kind == doc.Element {
			if err := ex.gatherPre(n, d, childPath(path, n.Label), pred, depthAt, tasks); err != nil {
				return err
			}
			continue
		}
		if n.Kind != doc.Func || d >= ex.rw.K {
			continue
		}
		fi := c.Func(c.Table.Intern(n.Label))
		if fi == nil || !fi.Invocable || !pred(fi) {
			continue
		}
		if ex.isFrozen(n) {
			continue
		}
		for _, f := range doc.FuncsBottomUp(n) {
			if err := ex.materializeParams(f, path); err != nil {
				return err
			}
		}
		if ex.isFrozen(n) {
			continue
		}
		*tasks = append(*tasks, &preTask{parent: container, node: n, depth: d})
	}
	return nil
}
