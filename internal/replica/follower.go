package replica

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"axml/internal/store"
	"axml/internal/telemetry"
	"axml/internal/telemetry/obslog"
	"axml/internal/wal"
	"axml/internal/xmlio"
)

// FollowerOptions configures NewFollower.
type FollowerOptions struct {
	// Leader is the leader peer's base URL (e.g. http://host:8080); the
	// follower appends /replica/snapshot and /replica/stream.
	Leader string
	// Store receives the applied records; it is typically the follower
	// peer's own repository, so the replicated corpus is served read-only
	// by the ordinary HTTP surface.
	Store store.DocStore
	// Client overrides the HTTP client. Its timeout must exceed PollWait;
	// the default client allows PollWait + 10s.
	Client *http.Client
	// PollWait is the long-poll wait requested per stream call (default
	// DefaultWait; the leader caps it at its own maximum).
	PollWait time.Duration
	// Backoff is the delay before reconnecting after a transport error
	// (default 500ms).
	Backoff time.Duration
	// Logger, when non-nil, records bootstrap/reconnect/apply events.
	Logger *obslog.Logger
	// Registry, when non-nil, registers the follower-side axml_replica_*
	// metrics (lag, applied records, apply errors, reconnects, bootstraps).
	Registry *telemetry.Registry
}

// Follower pulls the leader's replication stream and applies it to a local
// DocStore: snapshot bootstrap when cold (or told 410 Gone), then long-poll
// tail streaming. Run it in a goroutine; it retries transport errors with
// backoff until its context is canceled.
type Follower struct {
	opts   FollowerOptions
	client *http.Client

	applied     atomic.Uint64 // records applied since process start
	applyErrors atomic.Uint64 // records that failed to apply (skipped)
	reconnects  atomic.Uint64 // transport errors answered with backoff
	bootstraps  atomic.Uint64 // snapshot bootstraps completed

	mu         sync.Mutex
	epoch      string    // leader epoch the position is valid in
	appliedSeq uint64    // leader WAL seq the store reflects
	leaderHead uint64    // last head the leader reported
	lagSince   time.Time // zero when caught up
	lastErr    string
}

// NewFollower builds a follower; call Run to start replicating.
func NewFollower(opts FollowerOptions) *Follower {
	if opts.PollWait <= 0 {
		opts.PollWait = DefaultWait
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 500 * time.Millisecond
	}
	f := &Follower{opts: opts, client: opts.Client}
	if f.client == nil {
		f.client = &http.Client{Timeout: opts.PollWait + 10*time.Second}
	}
	if reg := opts.Registry; reg != nil {
		reg.CounterFunc("axml_replica_applied_records_total", func() float64 {
			return float64(f.applied.Load())
		})
		reg.CounterFunc("axml_replica_apply_errors_total", func() float64 {
			return float64(f.applyErrors.Load())
		})
		reg.CounterFunc("axml_replica_reconnects_total", func() float64 {
			return float64(f.reconnects.Load())
		})
		reg.CounterFunc("axml_replica_snapshot_bootstraps_total", func() float64 {
			return float64(f.bootstraps.Load())
		})
		reg.GaugeFunc("axml_replica_lag_records", func() float64 {
			st := f.Stats()
			return float64(st.LagRecords)
		})
		reg.GaugeFunc("axml_replica_lag_seconds", func() float64 {
			return f.Stats().LagSeconds
		})
	}
	return f
}

// errGone signals a 410 from the leader: the resume position (or epoch) is
// no longer valid and the follower must re-bootstrap.
type errGone struct{ msg string }

func (e errGone) Error() string { return e.msg }

// Run replicates until ctx is canceled. It never returns a non-nil error
// other than ctx.Err(): every failure is logged, counted and retried.
func (f *Follower) Run(ctx context.Context) error {
	needBootstrap := true
	for ctx.Err() == nil {
		var err error
		if needBootstrap {
			if err = f.bootstrap(ctx); err == nil {
				needBootstrap = false
			}
		} else {
			err = f.streamOnce(ctx)
		}
		switch {
		case err == nil:
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			if _, gone := err.(errGone); gone {
				// The position is unrecoverable, not the transport:
				// re-bootstrap immediately.
				needBootstrap = true
				f.noteError(err)
				f.logf(ctx, "replica position gone, re-bootstrapping", err)
				continue
			}
			f.reconnects.Add(1)
			f.noteError(err)
			f.logf(ctx, "replica stream error, backing off", err)
			select {
			case <-time.After(f.opts.Backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return ctx.Err()
}

// bootstrap replaces the local store's contents with the leader's snapshot
// and records the epoch/sequence the capture is consistent with.
func (f *Follower) bootstrap(ctx context.Context) error {
	resp, err := f.get(ctx, f.opts.Leader+"/replica/snapshot")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: snapshot: %s", respError(resp))
	}
	epoch := resp.Header.Get(HeaderEpoch)
	head, err := strconv.ParseUint(resp.Header.Get(HeaderHead), 10, 64)
	if err != nil || epoch == "" {
		return fmt.Errorf("replica: snapshot response missing epoch/head headers")
	}
	seen := make(map[string]bool)
	fr := wal.NewFrameReader(resp.Body)
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("replica: snapshot: %w", err)
		}
		seen[rec.Name] = true
		f.apply(ctx, rec)
	}
	// Documents the leader no longer holds must not survive locally: a
	// bootstrap is a full state replacement, not a merge.
	for _, name := range f.opts.Store.Names() {
		if !seen[name] {
			if err := f.opts.Store.Delete(name); err != nil {
				f.applyErrors.Add(1)
				f.logf(ctx, "replica bootstrap delete failed", err)
			}
		}
	}
	f.bootstraps.Add(1)
	f.mu.Lock()
	f.epoch = epoch
	f.appliedSeq = head
	f.leaderHead = head
	f.lagSince = time.Time{}
	f.lastErr = ""
	f.mu.Unlock()
	if f.opts.Logger != nil {
		f.opts.Logger.Info(ctx, "replica bootstrap complete",
			obslog.F("leader", f.opts.Leader),
			obslog.F("epoch", epoch),
			obslog.F("documents", len(seen)),
			obslog.F("seq", head))
	}
	return nil
}

// streamOnce issues one long-poll stream request and applies its frames.
func (f *Follower) streamOnce(ctx context.Context) error {
	f.mu.Lock()
	after, epoch := f.appliedSeq, f.epoch
	f.mu.Unlock()
	url := fmt.Sprintf("%s/replica/stream?after=%d&epoch=%s&wait=%s",
		f.opts.Leader, after, epoch, f.opts.PollWait)
	resp, err := f.get(ctx, url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		f.observeHead(resp, after)
		return nil
	case http.StatusGone:
		return errGone{fmt.Sprintf("replica: stream: %s", respError(resp))}
	case http.StatusOK:
	default:
		return fmt.Errorf("replica: stream: %s", respError(resp))
	}
	// Frames are contiguous from after+1 by protocol contract; applied
	// advances by position, and each frame's CRC was re-verified by the
	// FrameReader before it gets near the store.
	fr := wal.NewFrameReader(resp.Body)
	n := uint64(0)
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A torn or corrupt frame invalidates the batch suffix; the
			// records applied so far are committed, so resume after them.
			f.advance(after + n)
			f.observeHead(resp, after+n)
			return fmt.Errorf("replica: stream: %w", err)
		}
		f.apply(ctx, rec)
		n++
	}
	f.advance(after + n)
	f.observeHead(resp, after+n)
	return nil
}

// apply commits one record to the local store. Apply failures are counted
// and logged but do not halt replication: the sequence still advances, so
// one undecodable document cannot wedge the stream.
func (f *Follower) apply(ctx context.Context, rec wal.Record) {
	var err error
	switch rec.Op {
	case wal.OpPut:
		var d, perr = xmlio.ParseString(string(rec.Data))
		if perr != nil {
			err = perr
		} else {
			err = f.opts.Store.Put(rec.Name, d)
		}
	case wal.OpDelete:
		err = f.opts.Store.Delete(rec.Name)
	default:
		err = fmt.Errorf("replica: unknown op %d", rec.Op)
	}
	if err != nil {
		f.applyErrors.Add(1)
		if f.opts.Logger != nil {
			f.opts.Logger.Error(ctx, "replica apply failed",
				obslog.F("doc", rec.Name), obslog.Err(err))
		}
		return
	}
	f.applied.Add(1)
}

func (f *Follower) advance(seq uint64) {
	f.mu.Lock()
	if seq > f.appliedSeq {
		f.appliedSeq = seq
	}
	f.mu.Unlock()
}

// observeHead updates the leader-head view (and the lag clock) from a
// stream response's headers.
func (f *Follower) observeHead(resp *http.Response, applied uint64) {
	head, err := strconv.ParseUint(resp.Header.Get(HeaderHead), 10, 64)
	if err != nil {
		return
	}
	f.mu.Lock()
	f.leaderHead = head
	if applied >= head {
		f.lagSince = time.Time{}
	} else if f.lagSince.IsZero() {
		f.lagSince = time.Now()
	}
	f.mu.Unlock()
}

func (f *Follower) noteError(err error) {
	f.mu.Lock()
	f.lastErr = err.Error()
	f.mu.Unlock()
}

func (f *Follower) logf(ctx context.Context, msg string, err error) {
	if f.opts.Logger != nil {
		f.opts.Logger.Warn(ctx, msg, obslog.F("leader", f.opts.Leader), obslog.Err(err))
	}
}

func (f *Follower) get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return f.client.Do(req)
}

// respError summarizes a non-2xx response for error messages.
func respError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	if len(body) == 0 {
		return resp.Status
	}
	return fmt.Sprintf("%s: %s", resp.Status, body)
}

// FollowerStats is the follower-side replication report exposed under
// /stats.
type FollowerStats struct {
	Role        string  `json:"role"`
	Leader      string  `json:"leader"`
	Epoch       string  `json:"epoch"`
	AppliedSeq  uint64  `json:"applied_seq"`
	LeaderHead  uint64  `json:"leader_head"`
	LagRecords  uint64  `json:"lag_records"`
	LagSeconds  float64 `json:"lag_seconds"`
	Applied     uint64  `json:"applied_records"`
	ApplyErrors uint64  `json:"apply_errors"`
	Reconnects  uint64  `json:"reconnects"`
	Bootstraps  uint64  `json:"snapshot_bootstraps"`
	LastError   string  `json:"last_error,omitempty"`
}

// Stats reports the follower's current position and counters.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	st := FollowerStats{
		Role:       "follower",
		Leader:     f.opts.Leader,
		Epoch:      f.epoch,
		AppliedSeq: f.appliedSeq,
		LeaderHead: f.leaderHead,
		LastError:  f.lastErr,
	}
	if f.leaderHead > f.appliedSeq {
		st.LagRecords = f.leaderHead - f.appliedSeq
	}
	if !f.lagSince.IsZero() {
		st.LagSeconds = time.Since(f.lagSince).Seconds()
	}
	f.mu.Unlock()
	st.Applied = f.applied.Load()
	st.ApplyErrors = f.applyErrors.Load()
	st.Reconnects = f.reconnects.Load()
	st.Bootstraps = f.bootstraps.Load()
	return st
}
