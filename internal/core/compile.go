// Package core implements the rewriting algorithms of Milo et al.,
// "Exchanging Intensional XML Data" (SIGMOD 2003): k-depth left-to-right
// *safe* rewriting (Section 4, Figure 3), *possible* rewriting (Section 5,
// Figure 9), the *mixed* strategy, the lazy pruned variant of Section 7
// (Figure 12), and schema-level compatibility checking (Section 6) — plus
// the tree-level execution engine that drives real service invocations
// through an Invoker.
//
// The flow mirrors the paper. Given a document t, a sender schema s0 (the
// WSDL descriptions of every function appearing in t) and an exchange schema
// s, a rewriting:
//
//  1. checks, bottom-up, that the parameters of every function node can be
//     rewritten into the function's input type;
//  2. traverses the tree top-down; and
//  3. for every node, rewrites the word of its children labels into the
//     node's content model by deciding, left to right, which function
//     occurrences to invoke.
//
// Step 3 is the automata-theoretic heart: the fork automaton A_w^k describes
// every word reachable by a k-depth rewriting of w; safety holds iff the
// rewriter has a strategy avoiding the complement Ā of the target content
// model no matter which output instances the invoked services return.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"axml/internal/regex"
	"axml/internal/schema"
)

// Compiled bundles everything the word-level algorithms need about a
// (sender schema, exchange schema) pair: the shared symbol table, per-symbol
// function information, the effective alphabet, and target content models
// with function patterns expanded into alternations of the declared
// functions that match them.
//
// A Compiled is safe for concurrent use once Compile returns: funcs and
// alphabet are frozen, the pattern-expansion memo is lock-guarded, the lazy
// engine's derivative table is itself concurrency-safe, and the word-verdict
// memo (wordcache.go) is bounded and lock-guarded. Peers rely on this to
// serve parallel requests from one cached analysis.
type Compiled struct {
	Table  *regex.Table
	Sender *schema.Schema
	Target *schema.Schema

	funcs    map[regex.Symbol]*FuncInfo
	alphabet []regex.Symbol

	expandedMu sync.RWMutex
	expanded   map[string]*regex.Regex // memo: expandPatterns by regex key

	// deriver is shared by every lazy analysis over this pair, so derivative
	// tables of the target content models are computed once.
	deriver *regex.Deriver
	// streamable memoizes the target-streamability analysis (stream.go).
	streamOnce sync.Once
	streamable bool
	// words memoizes word-level verdicts; see wordcache.go.
	words atomic.Pointer[wordCacheBox]
	// instr carries the telemetry handles word-level analyses report into
	// (instruments.go); nil disables instrumentation.
	instr atomic.Pointer[Instruments]
}

// SetInstruments attaches telemetry instruments to this compiled analysis:
// word-verdict counters, analysis latency and automaton-size histograms are
// reported through them. Pass nil to detach. Safe to call concurrently with
// analyses; CompiledCache.Instrument and NewRewriterForConfig call this.
func (c *Compiled) SetInstruments(ins *Instruments) {
	c.instr.Store(ins)
}

// instruments returns the attached instruments (nil = no-op).
func (c *Compiled) instruments() *Instruments {
	return c.instr.Load()
}

// FuncInfo is the word-level view of a function or function-pattern symbol.
type FuncInfo struct {
	Sym regex.Symbol
	// Out is the output type; nil means the function returns atomic data,
	// which at the word level is the empty word ε.
	Out *regex.Regex
	// In is the input type (nil = atomic data); used by the tree phases.
	In        *regex.Regex
	Invocable bool
	Cost      float64
	// SideEffects blocks speculative pre-invocation in the mixed strategy.
	SideEffects bool
	// IsPattern marks abstract pattern symbols (occurring in output types).
	IsPattern bool
}

// Compile analyzes the schema pair. Both schemas must share one symbol
// namespace: either literally one table, or one schema's table an overlay of
// the other's (the /exchange endpoint parses untrusted schemas into a
// request-scoped overlay of the peer table). Compile panics otherwise, since
// silently mixing two tables would corrupt every automaton built downstream.
func Compile(sender, target *schema.Schema) *Compiled {
	if sender == nil {
		sender = target
	}
	// The compiled analysis interns through the *extending* table so every
	// symbol of both schemas resolves.
	table := target.Table
	if !table.Extends(sender.Table) {
		if !sender.Table.Extends(target.Table) {
			panic("core: sender and target schemas must share one symbol table")
		}
		table = sender.Table
	}
	c := &Compiled{
		Table:    table,
		Sender:   sender,
		Target:   target,
		funcs:    make(map[regex.Symbol]*FuncInfo),
		expanded: make(map[string]*regex.Regex),
		deriver:  regex.NewDeriver(),
	}
	c.words.Store(&wordCacheBox{wc: newWordCache(DefaultWordCacheSize)})
	// Declared functions: the target's view wins on policy (invocability),
	// because the exchange schema is where §2.1 restrictions live, but
	// signatures may come from either side (they agree by assumption).
	add := func(def *schema.FuncDef) {
		sym := c.Table.Intern(def.Name)
		if _, done := c.funcs[sym]; done {
			return
		}
		c.funcs[sym] = &FuncInfo{
			Sym:         sym,
			Out:         def.Out,
			In:          def.In,
			Invocable:   def.Invocable,
			Cost:        def.Cost,
			SideEffects: def.SideEffects,
		}
	}
	for _, name := range target.SortedFuncs() {
		add(target.Funcs[name])
	}
	for _, name := range sender.SortedFuncs() {
		add(sender.Funcs[name])
	}
	// Pattern symbols act as abstract functions when they occur inside
	// output types: invoking "some function matching p" yields a word of
	// p's output type.
	addPattern := func(def *schema.PatternDef) {
		sym := c.Table.Intern(def.Name)
		if _, done := c.funcs[sym]; done {
			return
		}
		c.funcs[sym] = &FuncInfo{
			Sym:       sym,
			Out:       def.Out,
			In:        def.In,
			Invocable: def.Invocable,
			IsPattern: true,
		}
	}
	for _, name := range target.SortedPatterns() {
		addPattern(target.Patterns[name])
	}
	for _, name := range sender.SortedPatterns() {
		addPattern(sender.Patterns[name])
	}

	sigma := append(sender.Alphabet(), target.Alphabet()...)
	sort.Slice(sigma, func(i, j int) bool { return sigma[i] < sigma[j] })
	c.alphabet = dedup(sigma)
	return c
}

func dedup(s []regex.Symbol) []regex.Symbol {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// Func returns the function info for a symbol, or nil for non-function
// symbols (element labels, undeclared names).
func (c *Compiled) Func(sym regex.Symbol) *FuncInfo { return c.funcs[sym] }

// Alphabet returns the effective alphabet: every symbol either schema
// mentions. Words being rewritten may intern additional symbols; callers
// pass those separately to the analyses.
func (c *Compiled) Alphabet() []regex.Symbol { return c.alphabet }

// ExpandPatterns rewrites a target-side content model so that each function
// pattern symbol p becomes the alternation of p itself (covering abstract
// occurrences from output types) and every *declared* function matching p.
// This is what lets a concrete document function be "read as" a pattern by
// the product constructions, which otherwise compare plain symbols.
func (c *Compiled) ExpandPatterns(r *regex.Regex) *regex.Regex {
	if r == nil {
		return nil
	}
	if len(c.Target.Patterns) == 0 && len(c.Sender.Patterns) == 0 {
		return r
	}
	key := r.Key()
	c.expandedMu.RLock()
	memo, ok := c.expanded[key]
	c.expandedMu.RUnlock()
	if ok {
		return memo
	}
	subst := make(map[regex.Symbol]*regex.Regex)
	expandInto := func(s *schema.Schema, pname string) {
		p := s.Patterns[pname]
		psym := c.Table.Intern(pname)
		if _, done := subst[psym]; done {
			return
		}
		alts := []*regex.Regex{regex.Sym(psym)}
		for _, fname := range c.Sender.SortedFuncs() {
			if schema.FuncMatchesPattern(c.Sender.Funcs[fname], p) {
				alts = append(alts, regex.Sym(c.Table.Intern(fname)))
			}
		}
		for _, fname := range c.Target.SortedFuncs() {
			if c.Sender.Funcs[fname] != nil {
				continue // already considered
			}
			if schema.FuncMatchesPattern(c.Target.Funcs[fname], p) {
				alts = append(alts, regex.Sym(c.Table.Intern(fname)))
			}
		}
		subst[psym] = regex.Alt(alts...)
	}
	for _, pname := range c.Target.SortedPatterns() {
		expandInto(c.Target, pname)
	}
	for _, pname := range c.Sender.SortedPatterns() {
		expandInto(c.Sender, pname)
	}
	out := substitute(r, subst)
	c.expandedMu.Lock()
	defer c.expandedMu.Unlock()
	if prev, ok := c.expanded[key]; ok {
		return prev // a racing expansion published first; keep it canonical
	}
	c.expanded[key] = out
	return out
}

// Deriver returns the shared, concurrency-safe derivative table lazy
// analyses over this pair use.
func (c *Compiled) Deriver() *regex.Deriver { return c.deriver }

// substitute replaces symbol leaves per the map, leaving everything else
// untouched.
func substitute(r *regex.Regex, subst map[regex.Symbol]*regex.Regex) *regex.Regex {
	switch r.Op {
	case regex.OpSym:
		if repl, ok := subst[r.Sym]; ok {
			return repl
		}
		return r
	case regex.OpConcat:
		subs := make([]*regex.Regex, len(r.Subs))
		for i, s := range r.Subs {
			subs[i] = substitute(s, subst)
		}
		return regex.Concat(subs...)
	case regex.OpAlt:
		subs := make([]*regex.Regex, len(r.Subs))
		for i, s := range r.Subs {
			subs[i] = substitute(s, subst)
		}
		return regex.Alt(subs...)
	case regex.OpStar:
		return regex.Star(substitute(r.Subs[0], subst))
	default:
		return r
	}
}

// ContentModel returns the (pattern-expanded) content model of a target
// label; isData reports atomic content.
func (c *Compiled) ContentModel(label string) (r *regex.Regex, isData, ok bool) {
	raw, isData, ok := c.Target.Content(label)
	if !ok || isData {
		return nil, isData, ok
	}
	return c.ExpandPatterns(raw), false, true
}

// InputType returns the (pattern-expanded) input type of a function symbol;
// exists is false when the symbol is not a function.
func (c *Compiled) InputType(sym regex.Symbol) (r *regex.Regex, isData bool, exists bool) {
	fi := c.funcs[sym]
	if fi == nil {
		return nil, false, false
	}
	if fi.In == nil {
		return nil, true, true
	}
	return c.ExpandPatterns(fi.In), false, true
}

func (c *Compiled) symName(s regex.Symbol) string { return c.Table.Name(s) }

// Err helpers shared by analyses and executors.

// NotSafeError reports why a rewriting request was judged unsafe or
// impossible, with the path of the offending node when known.
type NotSafeError struct {
	Path string
	Msg  string
}

func (e *NotSafeError) Error() string {
	if e.Path == "" {
		return "core: " + e.Msg
	}
	return fmt.Sprintf("core: %s: %s", e.Path, e.Msg)
}
