package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// MetricsHandler serves the registry in Prometheus text format 0.0.4.
// A nil registry serves 503 so a disabled daemon still answers.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if r == nil {
			http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		_ = r.WritePrometheus(w)
	})
}

// TracesHandler serves the retained spans as JSON, oldest first.
func (t *Tracer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if t == nil {
			http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
			return
		}
		spans := t.Spans()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"capacity": t.Capacity(),
			"recorded": t.Recorded(),
			"dropped":  t.Dropped(),
			"spans":    spans,
		})
	})
}

// statusStrings holds pre-rendered decimal forms of the valid HTTP status
// range so stamping a span status doesn't allocate per request.
var statusStrings = func() (s [500]string) {
	for i := range s {
		s[i] = strconv.Itoa(100 + i)
	}
	return
}()

func statusString(code int) string {
	if code >= 100 && code < 600 {
		return statusStrings[code-100]
	}
	return strconv.Itoa(code)
}

// statusWriter captures the status code and body size a handler writes.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// InstrumentHandler wraps h with per-handler request metrics and an
// `http.<name>` span, and plants reg in the request context so deeper
// layers (the rewriter, the invoke chain) join the same trace. The
// metric families are:
//
//	axml_http_requests_total{handler,code}   counter, code is a class (2xx…)
//	axml_http_request_seconds{handler}       histogram
//	axml_http_request_bytes{handler}         histogram (Content-Length)
//	axml_http_response_bytes{handler}        histogram
//
// Status-class counters are pre-registered so every class appears in
// the exposition from boot. A nil registry returns h unchanged.
func InstrumentHandler(reg *Registry, name string, h http.Handler) http.Handler {
	if reg == nil {
		return h
	}
	classes := [5]*Counter{}
	for i := range classes {
		classes[i] = reg.Counter("axml_http_requests_total",
			"handler", name, "code", strconv.Itoa(i+1)+"xx")
	}
	seconds := reg.Histogram("axml_http_request_seconds", DefBuckets, "handler", name)
	reqBytes := reg.Histogram("axml_http_request_bytes", SizeBuckets, "handler", name)
	respBytes := reg.Histogram("axml_http_response_bytes", SizeBuckets, "handler", name)
	spanName := "http." + name
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		ctx, span := startSpanWith(req.Context(), reg, spanName)
		span.SetAttr("method", req.Method)
		span.SetAttr("path", req.URL.Path)
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, req.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if cls := sw.status/100 - 1; cls >= 0 && cls < len(classes) {
			classes[cls].Inc()
		}
		seconds.ObserveSince(start)
		if req.ContentLength >= 0 {
			reqBytes.Observe(float64(req.ContentLength))
		}
		respBytes.Observe(float64(sw.bytes))
		span.SetAttr("status", statusString(sw.status))
		span.End(nil)
	})
}
