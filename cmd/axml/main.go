// Command axml is the command-line front end to the intensional-XML
// rewriting library: validate documents against intensional schemas, decide
// and execute safe/possible/mixed rewritings, and check schema-to-schema
// compatibility.
//
// Schemas load from two formats, chosen by extension: .xsd/.xml files are
// XML Schema_int documents; anything else uses the compact text DSL (see
// internal/schema).
//
//	axml validate -schema s.axs doc.xml
//	axml check -sender s0.axs -target s.axs -mode safe -k 2 doc.xml
//	axml rewrite -sender s0.axs -target s.axs -mode safe -k 2 -sim 7 doc.xml
//	axml schema-check -sender s0.axs -target s.axs -k 1 [-root label]
//	axml convert -schema s.axs [-wsdl name -endpoint url]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/regex"
	"axml/internal/schema"
	"axml/internal/soap"
	"axml/internal/telemetry"
	"axml/internal/workload"
	"axml/internal/wsdl"
	"axml/internal/xmlio"
	"axml/internal/xsdint"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "axml:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "validate":
		return cmdValidate(args[1:])
	case "check":
		return cmdCheck(args[1:])
	case "rewrite":
		return cmdRewrite(args[1:])
	case "schema-check":
		return cmdSchemaCheck(args[1:])
	case "convert":
		return cmdConvert(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: axml <command> [flags] [doc.xml]

commands:
  validate      check a document is an instance of a schema
  check         decide whether a document rewrites into a target schema
  rewrite       execute the rewriting (simulated or SOAP services)
  schema-check  decide schema-to-schema safe rewriting (Definition 6)
  convert       print a schema as XML Schema_int or WSDL_int
`)
}

// loadSchema reads a schema file; .xsd/.xml mean XML Schema_int, everything
// else the text DSL. table may be nil for a fresh symbol table.
func loadSchema(path string, table *regex.Table) (*schema.Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".xsd") || strings.HasSuffix(path, ".xml") {
		return xsdint.ParseString(string(data), xsdint.Options{Table: table})
	}
	if table == nil {
		return schema.ParseText(string(data), nil)
	}
	return schema.ParseTextShared(schema.NewShared(table), string(data), nil)
}

func loadDoc(path string) (*doc.Node, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return xmlio.Parse(f)
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "safe":
		return core.Safe, nil
	case "possible":
		return core.Possible, nil
	case "mixed":
		return core.Mixed, nil
	default:
		return core.Safe, fmt.Errorf("mode must be safe, possible or mixed (got %q)", s)
	}
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	schemaPath := fs.String("schema", "", "schema file (.axs text DSL or .xsd XML Schema_int)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *schemaPath == "" || fs.NArg() != 1 {
		return fmt.Errorf("validate needs -schema and one document")
	}
	s, err := loadSchema(*schemaPath, nil)
	if err != nil {
		return err
	}
	d, err := loadDoc(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := schema.NewContext(s, nil).Validate(d); err != nil {
		return err
	}
	fmt.Printf("%s is a valid instance of %s\n", fs.Arg(0), *schemaPath)
	return nil
}

// loadPair loads sender and target schemas over one symbol table.
func loadPair(senderPath, targetPath string) (*schema.Schema, *schema.Schema, error) {
	sender, err := loadSchema(senderPath, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("sender schema: %w", err)
	}
	target, err := loadSchema(targetPath, sender.Table)
	if err != nil {
		return nil, nil, fmt.Errorf("target schema: %w", err)
	}
	return sender, target, nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	senderPath := fs.String("sender", "", "sender schema (function signatures)")
	targetPath := fs.String("target", "", "exchange schema")
	modeStr := fs.String("mode", "safe", "safe | possible")
	k := fs.Int("k", 2, "rewriting depth bound")
	lazy := fs.Bool("lazy", false, "use the lazy analysis variant")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *senderPath == "" || *targetPath == "" || fs.NArg() != 1 {
		return fmt.Errorf("check needs -sender, -target and one document")
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		return err
	}
	sender, target, err := loadPair(*senderPath, *targetPath)
	if err != nil {
		return err
	}
	d, err := loadDoc(fs.Arg(0))
	if err != nil {
		return err
	}
	rw := core.NewRewriter(sender, target, *k, nil)
	if *lazy {
		rw.Engine = core.Lazy
	}
	if err := rw.CheckDocument(d, mode); err != nil {
		return fmt.Errorf("NOT %s-rewritable (k=%d): %w", mode, *k, err)
	}
	fmt.Printf("%s %s-rewrites into %s within depth %d\n", fs.Arg(0), mode, *targetPath, *k)
	return nil
}

func cmdRewrite(args []string) error {
	fs := flag.NewFlagSet("rewrite", flag.ContinueOnError)
	senderPath := fs.String("sender", "", "sender schema (function signatures)")
	targetPath := fs.String("target", "", "exchange schema")
	modeStr := fs.String("mode", "safe", "safe | possible | mixed")
	k := fs.Int("k", 2, "rewriting depth bound")
	simSeed := fs.Int64("sim", -1, "simulate services with this random seed")
	endpoint := fs.String("endpoint", "", "default SOAP endpoint for service calls")
	lazy := fs.Bool("lazy", false, "use the lazy analysis variant")
	audit := fs.Bool("audit", false, "print the invocation trail to stderr")
	verbose := fs.Bool("v", false, "tag the run with a rewrite id and print it with the invocation trail to stderr")
	parallel := fs.Int("parallel", 1, "parallel materialization degree (1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be at least 1, got %d", *parallel)
	}
	if *senderPath == "" || *targetPath == "" || fs.NArg() != 1 {
		return fmt.Errorf("rewrite needs -sender, -target and one document")
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		return err
	}
	sender, target, err := loadPair(*senderPath, *targetPath)
	if err != nil {
		return err
	}
	d, err := loadDoc(fs.Arg(0))
	if err != nil {
		return err
	}
	var invoker core.Invoker
	switch {
	case *simSeed >= 0:
		invoker = workload.NewSimInvoker(sender, rand.New(rand.NewSource(*simSeed)))
	case *endpoint != "":
		invoker = &soap.Invoker{Default: *endpoint}
	default:
		return fmt.Errorf("rewrite needs -sim <seed> or -endpoint <url>")
	}
	rw := core.NewRewriter(sender, target, *k, invoker)
	if *lazy {
		rw.Engine = core.Lazy
	}
	rw.Parallelism = *parallel
	rw.Audit = &core.Audit{}
	ctx := context.Background()
	if *verbose {
		// One generated id per top-level rewrite; every audit record carries
		// it, so runs can be correlated with peer-side telemetry.
		id := telemetry.NewID()
		ctx = telemetry.WithTraceID(ctx, id)
		fmt.Fprintf(os.Stderr, "rewrite %s mode=%s k=%d\n", id, mode, *k)
	}
	out, err := rw.RewriteDocumentContext(ctx, d, mode)
	if *audit || *verbose {
		for _, c := range rw.Audit.Calls() {
			fmt.Fprintf(os.Stderr, "call %-20s rewrite=%s depth=%d cost=%.2f returned %d nodes\n",
				c.Func, c.Rewrite, c.Depth, c.Cost, c.ResultNodes)
		}
	}
	if err != nil {
		return err
	}
	return xmlio.Write(os.Stdout, out)
}

func cmdSchemaCheck(args []string) error {
	fs := flag.NewFlagSet("schema-check", flag.ContinueOnError)
	senderPath := fs.String("sender", "", "sender schema")
	targetPath := fs.String("target", "", "exchange schema")
	root := fs.String("root", "", "root label (defaults to the sender schema's)")
	k := fs.Int("k", 1, "rewriting depth bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *senderPath == "" || *targetPath == "" {
		return fmt.Errorf("schema-check needs -sender and -target")
	}
	sender, target, err := loadPair(*senderPath, *targetPath)
	if err != nil {
		return err
	}
	report, err := core.SchemaSafeRewrite(core.Compile(sender, target), *root, *k)
	if err != nil {
		return err
	}
	for _, v := range report.Verdicts {
		status := "safe"
		if !v.Safe {
			status = "UNSAFE"
		}
		fmt.Printf("%-20s %s", v.Label, status)
		if v.Reason != "" {
			fmt.Printf("  (%s)", v.Reason)
		}
		fmt.Println()
	}
	if !report.Safe() {
		return fmt.Errorf("schema %s does NOT safely rewrite into %s", *senderPath, *targetPath)
	}
	fmt.Printf("schema %s safely rewrites into %s (root %s, k=%d)\n", *senderPath, *targetPath, report.Root, *k)
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	schemaPath := fs.String("schema", "", "schema file to convert")
	asWSDL := fs.String("wsdl", "", "emit WSDL_int with this service name")
	endpoint := fs.String("endpoint", "", "service endpoint for WSDL output")
	asText := fs.Bool("text", false, "emit the compact text DSL instead of XSD_int")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *schemaPath == "" {
		return fmt.Errorf("convert needs -schema")
	}
	s, err := loadSchema(*schemaPath, nil)
	if err != nil {
		return err
	}
	switch {
	case *asText:
		fmt.Print(s.Text())
		return nil
	case *asWSDL != "":
		return wsdl.Write(os.Stdout, &wsdl.Description{
			Name:            *asWSDL,
			TargetNamespace: "urn:axml:" + *asWSDL,
			Endpoint:        *endpoint,
			Schema:          s,
		}, nil)
	default:
		return xsdint.Write(os.Stdout, s, nil)
	}
}
