package store

import (
	"fmt"
	"sync"
	"testing"

	"axml/internal/doc"
	"axml/internal/wal"
)

// ExportState is the replication bootstrap: its document capture and its
// sequence number must agree exactly — a record with seq <= the export's seq
// is in the capture, one with seq > it is not. This hammers exports against
// concurrent mutations and replays each export's capture forward through
// the WAL tail, expecting convergence with the final repository state.
func TestExportStateConsistentUnderMutation(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), DurableOptions{Sync: wal.SyncNone, TailRecords: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				name := fmt.Sprintf("w%d-%d", g, i%10)
				if i%7 == 6 {
					if err := d.Delete(name); err != nil {
						t.Errorf("delete %s: %v", name, err)
					}
					continue
				}
				if err := d.Put(name, doc.Elem("d", doc.TextNode(fmt.Sprintf("%d-%d", g, i)))); err != nil {
					t.Errorf("put %s: %v", name, err)
				}
			}
		}(g)
	}

	var exports []struct {
		docs map[string][]byte
		seq  uint64
	}
	for i := 0; i < 20; i++ {
		docs, seq, err := d.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		exports = append(exports, struct {
			docs map[string][]byte
			seq  uint64
		}{docs, seq})
	}
	wg.Wait()

	final, head, err := d.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if head != d.WAL().HeadSeq() {
		t.Fatalf("quiesced export seq %d != head %d", head, d.WAL().HeadSeq())
	}
	for i, ex := range exports {
		state := make(map[string][]byte, len(ex.docs))
		for k, v := range ex.docs {
			state[k] = v
		}
		recs, gap := d.WAL().ReadAfter(ex.seq, 0)
		if gap {
			t.Fatalf("export %d: tail evicted (enlarge TailRecords)", i)
		}
		for _, r := range recs {
			switch r.Op {
			case wal.OpPut:
				state[r.Name] = r.Data
			case wal.OpDelete:
				delete(state, r.Name)
			}
		}
		if len(state) != len(final) {
			t.Fatalf("export %d + tail: %d docs, want %d", i, len(state), len(final))
		}
		for name, want := range final {
			if string(state[name]) != string(want) {
				t.Fatalf("export %d + tail: %s = %q, want %q", i, name, state[name], want)
			}
		}
	}
}
