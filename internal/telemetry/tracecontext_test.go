package telemetry

import (
	"context"
	"net/http"
	"testing"
)

func TestFormatParseTraceparentRoundTrip(t *testing.T) {
	traceID := NewID()
	parentID := NewID()
	h := FormatTraceparent(traceID, parentID)
	if h == "" {
		t.Fatalf("FormatTraceparent(%q, %q) = empty", traceID, parentID)
	}
	if len(h) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", h, len(h))
	}
	gotTrace, gotParent, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed", h)
	}
	if gotTrace != traceID {
		t.Errorf("trace ID round trip: got %q, want %q", gotTrace, traceID)
	}
	if gotParent != parentID {
		t.Errorf("parent ID round trip: got %q, want %q", gotParent, parentID)
	}
}

func TestParseTraceparentForeignID(t *testing.T) {
	// A trace ID minted by a non-axml peer must pass through opaque, not be
	// coerced into the internal dashed form.
	h := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	traceID, parentID, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed", h)
	}
	if traceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("foreign trace ID mangled: %q", traceID)
	}
	if parentID != "00f067aa-0ba902b7" {
		t.Errorf("foreign parent ID = %q, want internal dashed form", parentID)
	}
}

func TestParseTraceparentRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"short", "00-abc"},
		{"bad version", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"zero trace", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"zero parent", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
		{"uppercase", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01"},
		{"missing dash", "00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"trailing junk v00", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"},
		{"nonhex flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, ok := ParseTraceparent(tc.in); ok {
				t.Errorf("ParseTraceparent(%q) accepted invalid input", tc.in)
			}
		})
	}
	// Future versions may carry extra segments after the flags.
	if _, _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-future"); !ok {
		t.Error("future-version traceparent with extra segment rejected")
	}
}

func TestInjectExtractTraceContext(t *testing.T) {
	reg := NewRegistry()
	ctx, span := StartSpan(WithRegistry(context.Background(), reg), "client.request")
	h := make(http.Header)
	InjectTraceContext(ctx, h)
	span.End(nil)

	v := h.Get(TraceparentHeader)
	if v == "" {
		t.Fatal("traceparent header not injected")
	}
	traceID, parentID, ok := ExtractTraceContext(h)
	if !ok {
		t.Fatalf("ExtractTraceContext failed on %q", v)
	}
	if traceID != span.TraceID() {
		t.Errorf("extracted trace ID %q, want the client span's %q", traceID, span.TraceID())
	}
	if parentID != span.SpanID() {
		t.Errorf("extracted parent ID %q, want the client span ID %q", parentID, span.SpanID())
	}

	// The server side resumes the trace: a root span started under the
	// extracted identifiers must share the trace ID and point its parent at
	// the remote span.
	srvCtx := WithRemoteTrace(WithRegistry(context.Background(), reg), traceID, parentID)
	_, srvSpan := StartSpan(srvCtx, "server.request")
	srvSpan.End(nil)
	if srvSpan.TraceID() != span.TraceID() {
		t.Errorf("server span trace ID %q, want %q", srvSpan.TraceID(), span.TraceID())
	}
	spans := reg.Tracer().SpansForTrace(span.TraceID())
	var srvRec *SpanRecord
	for i := range spans {
		if spans[i].Name == "server.request" {
			srvRec = &spans[i]
		}
	}
	if srvRec == nil {
		t.Fatalf("server span not recorded under trace %q", span.TraceID())
	}
	if srvRec.ParentID != parentID {
		t.Errorf("server root span parent %q, want remote parent %q", srvRec.ParentID, parentID)
	}
}

func TestInjectTraceContextNoTrace(t *testing.T) {
	h := make(http.Header)
	InjectTraceContext(context.Background(), h)
	if v := h.Get(TraceparentHeader); v != "" {
		t.Errorf("injection without a trace wrote %q", v)
	}
	InjectTraceContext(nil, h) //nolint:staticcheck // nil ctx must be tolerated
	if v := h.Get(TraceparentHeader); v != "" {
		t.Errorf("injection with nil ctx wrote %q", v)
	}
}
