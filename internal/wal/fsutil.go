package wal

import (
	"fmt"
	"os"
	"path/filepath"
)

// TempPrefix marks in-progress atomic writes. Crashed leftovers carrying it
// may be deleted by any owner of the directory (recovery and SaveDir
// reconciliation both do).
const TempPrefix = ".axml-tmp-"

// WriteFileAtomic replaces path with data such that a crash at any point
// leaves either the old file or the new one, never a truncated mix: the
// data is written to a temp file in the same directory, fsynced, renamed
// over path, and the directory is fsynced so the rename itself is durable.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, TempPrefix+"*")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so entry creations, renames and removals in it
// are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("wal: fsync %s: %w", dir, serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: %w", cerr)
	}
	return nil
}
