package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSchema(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "peer.axs")
	err := os.WriteFile(path, []byte(`
root page
elem page = Get_Temp|temp
elem temp = data
elem city = data
func Get_Temp = city -> temp
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConfigureRejectsBadFlags(t *testing.T) {
	sp := writeSchema(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no schema", nil, "-schema is required"},
		{"zero cache", []string{"-schema", sp, "-cache", "0"}, "-cache must be positive"},
		{"negative cache", []string{"-schema", sp, "-cache", "-3"}, "-cache must be positive"},
		{"zero word cache", []string{"-schema", sp, "-word-cache", "0"}, "-word-cache must be positive"},
		{"zero max request", []string{"-schema", sp, "-max-request", "0"}, "-max-request must be positive"},
		{"negative max request", []string{"-schema", sp, "-max-request", "-1"}, "-max-request must be positive"},
		{"zero retries", []string{"-schema", sp, "-retries", "0"}, "-retries must be at least 1"},
		{"negative timeout", []string{"-schema", sp, "-call-timeout", "-1s"}, "-call-timeout must not be negative"},
		{"negative breaker", []string{"-schema", sp, "-breaker-failures", "-1"}, "-breaker-failures must not be negative"},
		{"bad mode", []string{"-schema", sp, "-mode", "yolo"}, "bad -mode"},
		{"pprof no port", []string{"-schema", sp, "-pprof", "6060"}, "-pprof"},
		{"pprof public", []string{"-schema", sp, "-pprof", "0.0.0.0:6060"}, "loopback"},
		{"pprof hostname", []string{"-schema", sp, "-pprof", "example.com:6060"}, "loopback"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := configure(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("configure(%v) error = %v, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestConfigureBuildsPeer(t *testing.T) {
	sp := writeSchema(t)
	p, opts, err := configure([]string{
		"-schema", sp, "-name", "news", "-addr", ":9999", "-mode", "possible",
		"-sim", "7",
		"-call-timeout", "2s", "-retries", "3", "-breaker-failures", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != ":9999" || p.Name != "news" {
		t.Errorf("addr=%q name=%q", opts.addr, p.Name)
	}
	if len(p.Policies) != 3 {
		t.Errorf("policies = %d, want 3 (breaker, retry, timeout)", len(p.Policies))
	}
	if _, ok := p.Services.Lookup("Get_Temp"); !ok {
		t.Error("simulated operation not registered")
	}
	if p.Telemetry == nil {
		t.Error("telemetry should default on")
	}
	if opts.pprof != "" {
		t.Errorf("pprof should default off, got %q", opts.pprof)
	}
}

func TestConfigureTelemetryOff(t *testing.T) {
	p, _, err := configure([]string{"-schema", writeSchema(t), "-telemetry=false"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Telemetry != nil {
		t.Error("-telemetry=false should leave the registry nil")
	}
}

func TestConfigurePprofLoopback(t *testing.T) {
	cases := []struct{ in, want string }{
		{":6060", "127.0.0.1:6060"},
		{"localhost:6060", "localhost:6060"},
		{"127.0.0.1:7070", "127.0.0.1:7070"},
		{"[::1]:6060", "[::1]:6060"},
	}
	for _, tc := range cases {
		_, opts, err := configure([]string{"-schema", writeSchema(t), "-pprof", tc.in})
		if err != nil {
			t.Errorf("-pprof %s: %v", tc.in, err)
			continue
		}
		if opts.pprof != tc.want {
			t.Errorf("-pprof %s normalized to %q, want %q", tc.in, opts.pprof, tc.want)
		}
	}
}

func TestConfigurePolicyFlagsOff(t *testing.T) {
	p, _, err := configure([]string{"-schema", writeSchema(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Policies) != 0 {
		t.Errorf("default policies = %d, want 0", len(p.Policies))
	}
}
