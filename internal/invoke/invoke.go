// Package invoke is the invocation middleware layer between the rewriting
// executor (internal/core) and the transports that actually reach services
// (internal/service, internal/soap): composable policies that discipline how
// the calls a rewriting schedules are executed on a network where slow,
// flaky and hung endpoints are the norm.
//
// A policy is a core.InvokePolicy — a function wrapping one core.Invoker in
// another. Chain composes them; the conventional order, outermost first, is
//
//	Chain(transport,
//	    WithConcurrencyLimit(64),        // bound simultaneous calls
//	    WithBreaker(Breaker{}),          // fail fast on dead endpoints
//	    WithRetry(Retry{Attempts: 3}),   // absorb transient errors
//	    WithTimeout(2*time.Second),      // bound each attempt
//	)
//
// so that every retry attempt gets its own timeout, the breaker counts
// post-retry outcomes, and the semaphore covers the whole exchange.
//
// Policy failures (budget exhausted, per-call timeout, open breaker) surface
// as *PolicyError, which core classifies as transient: Possible- and
// Mixed-mode rewritings degrade them to backtracking instead of aborting.
// Every attempt, backoff pause and breaker transition is reported through
// the context's core.EventSink — the rewriting's Audit, when one is set.
//
// The package also provides FaultInjector, a deterministic
// error/latency/hang/garbage schedule wrapper used by the fault-injection
// test suites.
package invoke

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"axml/internal/core"
	"axml/internal/doc"
)

// defaultRand is the jitter source when none is injected; the global
// math/rand source is safe for concurrent use.
func defaultRand() float64 { return rand.Float64() }

// Policy aliases core.InvokePolicy: middleware over core.Invoker.
type Policy = core.InvokePolicy

// Chain wraps inv so that policies[0] is the outermost layer.
func Chain(inv core.Invoker, policies ...Policy) core.Invoker {
	return core.ApplyPolicies(inv, policies)
}

// PolicyError reports an invocation stopped by the policy chain rather than
// answered by the service: retry budget exhausted, per-call timeout, open
// circuit breaker, cancelled semaphore wait. It marks itself transient, so
// Possible/Mixed rewritings backtrack over it (core.IsTransientCall).
type PolicyError struct {
	// Policy names the layer that stopped the call: "retry", "timeout",
	// "breaker" or "limit".
	Policy string
	// Func and Endpoint identify the call.
	Func     string
	Endpoint string
	// Attempts counts delivery attempts actually made.
	Attempts int
	// Err is the underlying cause (last attempt error, context error, or
	// ErrBreakerOpen).
	Err error
}

func (e *PolicyError) Error() string {
	return fmt.Sprintf("invoke: %s policy stopped %q (endpoint %s, %d attempts): %v",
		e.Policy, e.Func, e.Endpoint, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *PolicyError) Unwrap() error { return e.Err }

// TransientCall implements core.TransientCallError.
func (e *PolicyError) TransientCall() bool { return true }

// WithTimeout bounds each call (each retry attempt, when stacked inside
// WithRetry) to d. The deadline reaches the transport through the context;
// when it fires the call fails with a *PolicyError wrapping
// context.DeadlineExceeded. A transport that ignores its context cannot be
// interrupted — every invoker in this codebase honors it.
func WithTimeout(d time.Duration) Policy {
	return func(next core.Invoker) core.Invoker {
		return core.ContextInvokerFunc(func(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
			tctx, cancel := context.WithTimeout(ctx, d)
			defer cancel()
			res, err := next.Invoke(tctx, call)
			if err != nil && tctx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
				core.Emit(ctx, core.InvokeEvent{Func: call.Label, Endpoint: core.EndpointOf(call),
					Kind: core.EventTimeout, Err: err.Error()})
				return nil, &PolicyError{Policy: "timeout", Func: call.Label,
					Endpoint: core.EndpointOf(call), Attempts: 1, Err: context.DeadlineExceeded}
			}
			return res, err
		})
	}
}

// Retry configures WithRetry. The zero value means: up to DefaultAttempts
// attempts, exponential backoff from DefaultBaseDelay capped at
// DefaultMaxDelay, full jitter disabled (deterministic), every error
// retryable.
type Retry struct {
	// Attempts is the total number of delivery attempts (not re-tries);
	// values below 1 select DefaultAttempts.
	Attempts int
	// BaseDelay is the pause before the second attempt; 0 selects
	// DefaultBaseDelay. The pause doubles (times Multiplier) per attempt.
	BaseDelay time.Duration
	// MaxDelay caps the pause; 0 selects DefaultMaxDelay.
	MaxDelay time.Duration
	// Multiplier scales the pause between attempts; values below 1 select 2.
	Multiplier float64
	// Jitter, in [0,1], randomizes each pause to pause*(1-Jitter+Jitter*u)
	// with u uniform in [0,1) — spreading synchronized retry storms. 0 keeps
	// the schedule deterministic.
	Jitter float64
	// Rand supplies the jitter's uniform samples; nil selects math/rand.
	// Tests inject a fixed source for determinism.
	Rand func() float64
	// Retryable decides which errors are worth another attempt; nil retries
	// everything except context cancellation.
	Retryable func(error) bool
	// Sleep pauses between attempts; nil selects a context-aware timer wait.
	// Tests inject an instant sleep.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Retry defaults.
const (
	DefaultAttempts  = 3
	DefaultBaseDelay = 50 * time.Millisecond
	DefaultMaxDelay  = 5 * time.Second
)

// WithRetry retries failed calls with exponential backoff. Exhausting the
// budget yields a *PolicyError (transient); a non-retryable error or a done
// context surfaces as-is.
func WithRetry(cfg Retry) Policy {
	attempts := cfg.Attempts
	if attempts < 1 {
		attempts = DefaultAttempts
	}
	base := cfg.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	maxd := cfg.MaxDelay
	if maxd <= 0 {
		maxd = DefaultMaxDelay
	}
	mult := cfg.Multiplier
	if mult < 1 {
		mult = 2
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	return func(next core.Invoker) core.Invoker {
		return core.ContextInvokerFunc(func(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
			endpoint := core.EndpointOf(call)
			delay := base
			var lastErr error
			for attempt := 1; attempt <= attempts; attempt++ {
				core.Emit(ctx, core.InvokeEvent{Func: call.Label, Endpoint: endpoint,
					Kind: core.EventAttempt, Attempt: attempt})
				res, err := next.Invoke(ctx, call)
				if err == nil {
					return res, nil
				}
				lastErr = err
				if ctx.Err() != nil {
					return nil, err
				}
				if cfg.Retryable != nil && !cfg.Retryable(err) {
					return nil, err
				}
				if attempt == attempts {
					break
				}
				wait := jitter(delay, cfg.Jitter, cfg.Rand)
				core.Emit(ctx, core.InvokeEvent{Func: call.Label, Endpoint: endpoint,
					Kind: core.EventRetryWait, Attempt: attempt, Wait: wait, Err: err.Error()})
				if serr := sleep(ctx, wait); serr != nil {
					return nil, serr
				}
				delay = time.Duration(float64(delay) * mult)
				if delay > maxd {
					delay = maxd
				}
			}
			core.Emit(ctx, core.InvokeEvent{Func: call.Label, Endpoint: endpoint,
				Kind: core.EventExhausted, Attempt: attempts, Err: lastErr.Error()})
			return nil, &PolicyError{Policy: "retry", Func: call.Label, Endpoint: endpoint,
				Attempts: attempts, Err: lastErr}
		})
	}
}

// WithConcurrencyLimit bounds the number of simultaneous calls flowing
// through the chain to n; excess callers wait (respecting their context).
// The semaphore is shared by every invoker this policy instance wraps.
func WithConcurrencyLimit(n int) Policy {
	if n < 1 {
		n = 1
	}
	sem := make(chan struct{}, n)
	return func(next core.Invoker) core.Invoker {
		return core.ContextInvokerFunc(func(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return nil, &PolicyError{Policy: "limit", Func: call.Label,
					Endpoint: core.EndpointOf(call), Err: ctx.Err()}
			}
			defer func() { <-sem }()
			return next.Invoke(ctx, call)
		})
	}
}

// WithLatency delays every call by d before forwarding it — a simulated
// network round-trip for benchmarks and parallel-speedup experiments, where
// the interesting quantity is how much of the per-call latency the engine
// overlaps. The wait respects the context; zero or negative d is a no-op.
func WithLatency(d time.Duration) Policy {
	return func(next core.Invoker) core.Invoker {
		if d <= 0 {
			return next
		}
		return core.ContextInvokerFunc(func(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
			if err := sleepCtx(ctx, d); err != nil {
				return nil, err
			}
			return next.Invoke(ctx, call)
		})
	}
}

// sleepCtx waits d or until the context is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jitter spreads a backoff pause: d*(1-j) plus a random fraction of d*j.
func jitter(d time.Duration, j float64, rnd func() float64) time.Duration {
	if j <= 0 || d <= 0 {
		return d
	}
	if j > 1 {
		j = 1
	}
	if rnd == nil {
		rnd = defaultRand
	}
	f := 1 - j + j*rnd()
	return time.Duration(float64(d) * f)
}
