// Top-level benchmarks: one per experiment row of DESIGN.md §3 /
// EXPERIMENTS.md. Run with
//
//	go test -bench=. -benchmem .
//
// cmd/axml-bench prints the same experiments as human-readable tables with
// state counts alongside the timings.
package axml_test

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"axml"
	"axml/internal/automata"
	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/experiments"
	"axml/internal/invoke"
	"axml/internal/peer"
	"axml/internal/regex"
	"axml/internal/schema"
	"axml/internal/service"
	"axml/internal/soap"
	"axml/internal/telemetry"
	"axml/internal/workload"
)

// E-F2: materializing the Figure 2 newspaper end to end.
func BenchmarkFig2Materialize(b *testing.B) {
	sender := axml.MustParseSchemaText(senderSrc)
	target := axml.MustParseSchemaTextShared(sender, targetSrc)
	inv := axml.InvokerFunc(func(call *axml.Node) ([]*axml.Node, error) {
		return []*axml.Node{axml.Elem("temp", axml.Text("15"))}, nil
	})
	rw := axml.NewRewriter(sender, target, 2, inv)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rw.RewriteDocument(newspaper(), axml.Safe); err != nil {
			b.Fatal(err)
		}
	}
}

// E-F4: constructing the fork automaton A_w^1 of Figure 4.
func BenchmarkForkAutomaton(b *testing.B) {
	c, w := experiments.PaperCompiled()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildFork(c, w, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// E-F5: the complete complement automaton Ā of schema (**)'s content model.
func BenchmarkFig5Complement(b *testing.B) {
	c, _ := experiments.PaperCompiled()
	target := regex.MustParse(c.Table, experiments.TargetStarStar)
	sigma := target.Alphabet(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		automata.ComplementOfRegex(target, sigma)
	}
}

// E-F6: the full safe-rewriting decision of Figure 6 (safe).
func BenchmarkSafeRewriteFig6(b *testing.B) {
	c, w := experiments.PaperCompiled()
	target := regex.MustParse(c.Table, experiments.TargetStarStar)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		safe, err := core.WordSafe(c, w, target, 1)
		if err != nil || !safe {
			b.Fatal("expected safe")
		}
	}
}

// E-F7/F8: the refusal of Figure 8 (unsafe).
func BenchmarkUnsafeRewriteFig8(b *testing.B) {
	c, w := experiments.PaperCompiled()
	target := regex.MustParse(c.Table, experiments.TargetTripleStar)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		safe, err := core.WordSafe(c, w, target, 1)
		if err != nil || safe {
			b.Fatal("expected unsafe")
		}
	}
}

// E-F10/F11: the possible-rewriting decision of Figure 11.
func BenchmarkPossibleRewrite(b *testing.B) {
	c, w := experiments.PaperCompiled()
	target := regex.MustParse(c.Table, experiments.TargetTripleStar)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		possible, err := core.WordPossible(c, w, target, 1)
		if err != nil || !possible {
			b.Fatal("expected possible")
		}
	}
}

// E-F12 / E-C5: lazy vs eager safe analysis.
func BenchmarkLazyVsEagerSafe(b *testing.B) {
	c, w := experiments.PaperCompiled()
	target := regex.MustParse(c.Table, experiments.TargetStarStar)
	b.Run("eager", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.WordSafe(c, w, target, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lazy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.LazySafe(c, w, target, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E-C1: safe analysis against schema size and depth bound.
func BenchmarkSafeScaling(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		for _, k := range []int{1, 2} {
			c, w, target := experiments.ChainInstance(n)
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.WordSafe(c, w, target, k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// E-C2: complementation of deterministic vs non-deterministic models.
func BenchmarkComplementDetVsNondet(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		tab := regex.NewTable()
		det := experiments.DetTarget(tab, n)
		nondet := experiments.NondetTarget(tab, n)
		b.Run(fmt.Sprintf("det/n=%d", n), func(b *testing.B) {
			sigma := det.Alphabet(nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				automata.ComplementOfRegex(det, sigma)
			}
		})
		b.Run(fmt.Sprintf("nondet/n=%d", n), func(b *testing.B) {
			sigma := nondet.Alphabet(nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				automata.ComplementOfRegex(nondet, sigma)
			}
		})
	}
}

// E-C3: possible vs safe on the same instances.
func BenchmarkPossibleVsSafe(b *testing.B) {
	c, w, target := experiments.ChainInstance(16)
	b.Run("safe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.WordSafe(c, w, target, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("possible", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.WordPossible(c, w, target, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E-C4: the mixed strategy's benefit — analysis after pre-invocation.
func BenchmarkMixedRewrite(b *testing.B) {
	c, w, target := experiments.ChainInstance(16)
	after := make([]core.Token, len(w))
	for i := range after {
		after[i] = core.Token{Sym: c.Table.Intern(fmt.Sprintf("a%d", i))}
	}
	b.Run("before-preinvoke", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.WordSafe(c, w, target, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("after-preinvoke", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.WordSafe(c, after, target, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E-P1: the parallel materialization engine against simulated round-trip
// latency — 16 independent calls at 1ms each. Degree 1 is the sequential
// engine; the wall-clock ratio is the speedup the CI gate checks.
func BenchmarkParallelMaterialize(b *testing.B) {
	sender, target := experiments.ParallelPair()
	inv := invoke.Chain(experiments.ParallelInvoker(0), invoke.WithLatency(time.Millisecond))
	for _, degree := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("degree=%d", degree), func(b *testing.B) {
			rw := core.NewRewriterFor(core.Compile(sender, target), 2, inv)
			rw.Parallelism = degree
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rw.RewriteDocument(experiments.ParallelDoc(16), core.Safe); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E-C6: materializing a recursive handle at increasing k.
func BenchmarkKDepthGrowth(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			s := schema.MustParseText(`
root results
elem results = url*.Get_More?
elem url = data
func Get_More = data -> url*.Get_More?
`, nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim := workload.NewSimInvoker(s, rand.New(rand.NewSource(42)))
				rw := core.NewRewriter(s, s, k, sim)
				rw.MaxCalls = 1 << 12
				root := doc.Elem("results",
					doc.Elem("url", doc.TextNode("u0")),
					doc.Call("Get_More", doc.TextNode("q")))
				if _, err := rw.RewriteDocument(root, core.Mixed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E-C7: schema-to-schema compatibility checking.
func BenchmarkSchemaRewrite(b *testing.B) {
	sender := axml.MustParseSchemaText(senderSrc)
	target := axml.MustParseSchemaTextShared(sender, targetSrc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		report, err := axml.SchemaCompatible(sender, target, "", 1)
		if err != nil || !report.Safe() {
			b.Fatal("expected compatible")
		}
	}
}

// enforcementBench runs the E-C8 workload — one SOAP call whose response
// enforcement materializes a nested service call, over HTTP — against a
// peer carrying the given telemetry registry (nil for the no-op paths).
func enforcementBench(b *testing.B, reg *telemetry.Registry) {
	s := schema.MustParseText(`
root page
elem page = title.temp
elem title = data
elem temp = data
elem city = data
func Get_Temp = city -> temp
func Front = data -> page
`, nil)
	p := peer.New("bench", s)
	err := p.Services.Register(&service.Operation{
		Name: "Get_Temp", Def: s.Funcs["Get_Temp"],
		Handler: func([]*doc.Node) ([]*doc.Node, error) {
			return []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}, nil
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	err = p.Services.Register(&service.Operation{
		Name: "Front", Def: s.Funcs["Front"],
		Handler: func([]*doc.Node) ([]*doc.Node, error) {
			return []*doc.Node{doc.Elem("page",
				doc.Elem("title", doc.TextNode("t")),
				doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))}, nil
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	p.Telemetry = reg
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	client := &soap.Client{Endpoint: ts.URL + "/soap", Namespace: "urn:axml:bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := client.Call("Front", []*doc.Node{doc.TextNode("q")})
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != 1 || out[0].HasFuncs() {
			b.Fatal("enforcement did not materialize")
		}
	}
}

// E-C8: end-to-end peer exchange over HTTP with schema enforcement. With no
// registry configured every instrumentation hook takes its nil no-op path,
// so this benchmark also guards the telemetry layer's zero-overhead claim:
// its ns/op and allocs/op must not move against the pre-telemetry baseline.
func BenchmarkPeerEnforcement(b *testing.B) {
	enforcementBench(b, nil)
}

// E-T1: the same workload fully instrumented (pipeline metrics, spans,
// per-handler HTTP series). Compare against BenchmarkPeerEnforcement — or
// run `axml-bench -telemetry`, which interleaves paired rounds of both and
// gates the median overhead.
func BenchmarkPeerEnforcementTelemetry(b *testing.B) {
	enforcementBench(b, telemetry.NewRegistry())
}

// E-C9: the enforcement cache under parallel load. Every iteration is one
// full SendDocument (fork automaton + safe product on a miss; memo hits
// afterwards) over a shared peer, as when one peer serves many concurrent
// SOAP exchanges. Should scale with GOMAXPROCS: the cached analysis is
// read-shared, not rebuilt or lock-serialized per message.
func BenchmarkEnforcementCacheParallel(b *testing.B) {
	s := schema.MustParseText(`
root newspaper
elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.date
elem performance = data
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
`, nil)
	p := peer.New("bench", s)
	if err := p.Repo.Put("today", doc.Elem("newspaper",
		doc.Elem("title", doc.TextNode("The Sun")),
		doc.Elem("date", doc.TextNode("04/10/2002")),
		doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))),
		doc.Call("TimeOut", doc.TextNode("exhibits")),
	)); err != nil {
		b.Fatal(err)
	}
	register := func(name string, h service.Handler) {
		if err := p.Services.Register(&service.Operation{Name: name, Def: s.Funcs[name], Handler: h}); err != nil {
			b.Fatal(err)
		}
	}
	register("Get_Temp", func([]*doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}, nil
	})
	register("TimeOut", func([]*doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.Elem("exhibit",
			doc.Elem("title", doc.TextNode("Dali")),
			doc.Elem("date", doc.TextNode("2002")))}, nil
	})
	exch, err := schema.ParseTextShared(schema.NewShared(s.Table), `
root newspaper
elem newspaper = title.date.temp.(TimeOut|exhibit*)
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.date
elem performance = data
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
`, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			out, err := p.SendDocument("today", exch, core.Safe)
			if err != nil {
				b.Fatal(err)
			}
			if out.ChildLabels()[2] != "temp" {
				b.Fatal("enforcement did not materialize Get_Temp")
			}
		}
	})
}
