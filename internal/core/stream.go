// Streaming enforcement: a one-pass SAX-style drive of the rewriting
// machinery with O(depth) resident memory.
//
// The tree engine (exec.go) materializes the whole document, statically
// checks it, then rewrites. The streaming engine consumes token events and
// keeps only a frontier:
//
//   - one frame per open element holding a *residual target*: the Brzozowski
//     derivative of the element's content model by the symbols of the
//     children already emitted. For a function-free prefix the derivative is
//     an exact quotient — a suffix completes the word iff it rewrites into
//     the residual — so accepted children stream straight to the writer and
//     are never retained;
//   - an *island*: from the first function child onward, the rest of the
//     element's children are buffered, because keep-or-invoke decisions and
//     result splices are word-global to the right of a function occurrence.
//     At the element's close the island is resolved by the *real* executor
//     (rewriteWord against the residual, element recursion for the
//     survivors), so decisions, instrument counters and audit records come
//     from the same code path as the tree engine;
//   - function subtrees themselves (parameters travel with the call) and
//     data-element content (the batch printer chooses its element form from
//     the whole child list, and collapseToData is inherently bounded).
//
// Streaming is restricted to configurations where it provably matches the
// tree engine byte for byte: Safe mode (Possible-mode backtracking revisits
// emitted prefixes) and targets whose content models admit no function
// symbol at any position (so no function can be *kept*, which also
// guarantees the output needs no xmlns:int declaration). Everything else
// falls back to the tree path.
//
// Audit equivalence: the tree engine records phase-1 parameter
// materializations for the whole document first (doc.FuncsBottomUp order),
// then word-level and recursive records in document order. The streaming
// engine materializes each function at its arrival event — sources deliver
// complete subtrees at close-tag time, which *is* bottom-up order — into a
// phase-1 buffer, captures per-element bundles as frames close, and splices
// phase1 ++ bundle(root) into the audit at the end: the same order, merely
// assembled instead of chronological.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"axml/internal/doc"
	"axml/internal/regex"
	"axml/internal/telemetry"
	"axml/internal/xmlio"
)

// ErrStreamUnsupported reports input or configuration the streaming engine
// cannot handle; callers holding the document as a tree should re-run on
// the tree path (RewriteDocumentStream does so automatically).
var ErrStreamUnsupported = errors.New("core: streaming enforcement unavailable")

// streamFallbackReasons enumerates the causes pre-registered on the
// axml_stream_fallbacks_total counter.
var streamFallbackReasons = []string{"mode", "target", "func-root", "wild-func"}

// StreamResult reports how a streaming rewrite went.
type StreamResult struct {
	// Streamed is false when the tree engine served the request; then
	// FallbackReason names why ("mode", "target", "func-root", "wild-func").
	Streamed       bool
	FallbackReason string
	// PeakBufferedBytes/Nodes measure the largest resident frontier —
	// the O(depth) claim, observable per rewrite.
	PeakBufferedBytes int
	PeakBufferedNodes int
	// BytesWritten counts output bytes that reached the writer.
	BytesWritten int64
	// FirstByte is the latency to the first output byte (0 if none left
	// the buffer before completion).
	FirstByte time.Duration
	// Calls is the number of audited invocations.
	Calls int
}

// CanStream reports whether the streaming engine handles this
// rewriter/mode combination; reason is "" when it does.
func (rw *Rewriter) CanStream(mode Mode) (bool, string) {
	if mode != Safe {
		return false, "mode"
	}
	if !rw.Compiled.StreamableTarget() {
		return false, "target"
	}
	return true, ""
}

// StreamableTarget reports whether no target content model admits a
// function (or pattern-expanded function) symbol at any position. Then a
// keep decision can never succeed, every function is surely invoked, and
// streamed output is provably function-free. Computed once per Compiled.
func (c *Compiled) StreamableTarget() bool {
	c.streamOnce.Do(func() { c.streamable = c.computeStreamable() })
	return c.streamable
}

func (c *Compiled) computeStreamable() bool {
	for label := range c.Target.Labels {
		r, isData, ok := c.ContentModel(label)
		if !ok || isData || r == nil {
			continue
		}
		for _, cls := range regex.Positions(r).Classes {
			if cls.Negated {
				return false // could admit a function symbol
			}
			for _, s := range cls.Syms {
				if c.funcs[s] != nil {
					return false
				}
			}
		}
	}
	return true
}

// streamPrescan reports whether the tree can stream: a function node under
// a target-undeclared (wildcard) element survives rewriting untouched, and
// the emitter cannot represent it without the root xmlns:int declaration
// the batch printer would add. One O(n) pointer walk, no allocation.
// Function parameters reset the wildcard flag: parameters of an invoked
// call are consumed, and a call that cannot be invoked fails the word
// check on both engines.
func (rw *Rewriter) streamPrescan(n *doc.Node, wild bool) bool {
	switch n.Kind {
	case doc.Func:
		if wild {
			return false
		}
		for _, c := range n.Children {
			if !rw.streamPrescan(c, false) {
				return false
			}
		}
	case doc.Element:
		_, _, declared := rw.Compiled.ContentModel(n.Label)
		w := wild || !declared
		for _, c := range n.Children {
			if !rw.streamPrescan(c, w) {
				return false
			}
		}
	}
	return true
}

// RewriteDocumentStream enforces the exchange schema on root and writes the
// serialized result to w in one pass, falling back to the tree engine (plus
// direct serialization) for configurations streaming cannot handle. The
// document is mutated like RewriteDocumentContext; pass a clone to keep the
// original.
func (rw *Rewriter) RewriteDocumentStream(ctx context.Context, root *doc.Node, w io.Writer, mode Mode) (*StreamResult, error) {
	reason := ""
	if ok, r := rw.CanStream(mode); !ok {
		reason = r
	} else if root.Kind != doc.Element {
		reason = "func-root"
	} else if !rw.streamPrescan(root, false) {
		reason = "wild-func"
	}
	if reason != "" {
		rw.Instruments.countStreamFallback(reason)
		res := &StreamResult{FallbackReason: reason}
		out, err := rw.RewriteDocumentContext(ctx, root, mode)
		if err != nil {
			return res, err
		}
		return res, xmlio.WriteTo(w, out)
	}
	return rw.runStream(ctx, xmlio.NewTreeSource(root), w)
}

// RewriteStream enforces the exchange schema on a token stream — no tree is
// ever materialized. Unlike RewriteDocumentStream it cannot fall back (the
// stream is consumed as it goes): unsupported configurations return
// ErrStreamUnsupported before any token is read, and documents that turn
// out to need the tree path (function nodes in wildcard territory) fail
// mid-stream with the same error.
func (rw *Rewriter) RewriteStream(ctx context.Context, src xmlio.TokenSource, w io.Writer, mode Mode) (*StreamResult, error) {
	if ok, reason := rw.CanStream(mode); !ok {
		rw.Instruments.countStreamFallback(reason)
		return &StreamResult{FallbackReason: reason}, fmt.Errorf("%w: %s", ErrStreamUnsupported, reason)
	}
	return rw.runStream(ctx, src, w)
}

// runStream is the instrumented entry, mirroring RewriteForestContext:
// rewrite ID, stamped event sink, span, latency and stream metrics.
func (rw *Rewriter) runStream(ctx context.Context, src xmlio.TokenSource, w io.Writer) (*StreamResult, error) {
	if rw.Invoker == nil {
		return nil, fmt.Errorf("core: Rewriter has no Invoker; use CheckForest for static analysis")
	}
	id := telemetry.TraceIDFrom(ctx)
	if id == "" {
		id = telemetry.NewID()
		ctx = telemetry.WithTraceID(ctx, id)
	}
	ins := rw.Instruments
	sink := &stampSink{inner: rw.Audit, extra: rw.Events, ins: ins, id: id}
	if ins == nil {
		return rw.streamBody(ctx, src, w, sink, time.Now())
	}
	ctx = telemetry.WithRegistry(ctx, ins.Registry())
	ctx, span := telemetry.StartSpan(ctx, "rewrite.stream")
	span.SetAttr("rewrite_id", id)
	span.SetAttr("k", strconv.Itoa(rw.K))
	start := time.Now()
	res, err := rw.streamBody(ctx, src, w, sink, start)
	ins.observeRewrite(Safe, time.Since(start), err, id)
	if res != nil {
		ins.observeStream(res.PeakBufferedBytes, res.PeakBufferedNodes, res.FirstByte, err)
	}
	span.End(err)
	return res, err
}

// streamBody drives the event loop. Decisions and invocations run on a
// sequential executor sharing one execState, so verdicts, memos, the call
// budget and instrument counters behave exactly as on the sequential tree
// engine; with Parallelism > 1 a speculation pool overlaps the wall-clock
// work of surely-invoked calls with parsing without touching any ordering.
func (rw *Rewriter) streamBody(ctx context.Context, src xmlio.TokenSource, w io.Writer, sink EventSink, start time.Time) (*StreamResult, error) {
	res := &StreamResult{Streamed: true}
	srw := *rw
	srw.Parallelism = 0
	var spec *specPool
	if rw.Parallelism > 1 {
		spec = newSpecPool(WithEventSink(ctx, sink), rw.Invoker, rw.Parallelism)
		srw.Invoker = &specInvoker{pool: spec}
		defer spec.close()
	}
	ex := &executor{rw: &srw, ctx: WithEventSink(ctx, sink), mode: Safe,
		st: &execState{paramsDone: map[*doc.Node]bool{}, permafrost: map[*doc.Node]bool{}}}
	em := xmlio.NewEmitter(w)

	var g *streamEngine
	bundle, err := func() ([]CallRecord, error) {
		for {
			ev, err := src.Next()
			if err != nil {
				return nil, err
			}
			if g == nil {
				// First event: establish the document word type, as
				// documentType does on the tree path.
				label := rw.Compiled.Target.Root
				if label == "" {
					if ev.Kind != xmlio.EventStart {
						return nil, &NotSafeError{Msg: "document root is a function node and the target schema declares no root label"}
					}
					label = ev.Label
				}
				if rw.Compiled.Target.Labels[label] == nil {
					return nil, &NotSafeError{Msg: fmt.Sprintf("root label %q is not declared by the target schema", label)}
				}
				typ := regex.Sym(rw.Compiled.Table.Intern(label))
				g = &streamEngine{rw: &srw, ex: ex, em: em, c: rw.Compiled,
					d: rw.Compiled.Deriver(), spec: spec, phase1: &Audit{},
					frames: []*sFrame{{virtual: true, content: typ, resid: typ}}}
			}
			switch ev.Kind {
			case xmlio.EventStart:
				if err := g.start(ev.Label); err != nil {
					return nil, err
				}
			case xmlio.EventText:
				if err := g.text(ev.Text); err != nil {
					return nil, err
				}
			case xmlio.EventFunc:
				if err := g.fun(ev.Node); err != nil {
					return nil, err
				}
			case xmlio.EventEnd:
				if err := g.end(); err != nil {
					return nil, err
				}
			case xmlio.EventEOF:
				return g.finish()
			}
		}
	}()
	if g != nil {
		res.PeakBufferedBytes = g.peakBytes
		res.PeakBufferedNodes = g.peakNodes
	}
	if err != nil {
		em.Abort()
		res.BytesWritten = em.BytesWritten()
		return res, err
	}
	if err := em.End(); err != nil {
		return res, err
	}
	// The audit trail becomes visible only now, in tree-engine order:
	// phase-1 parameter materializations first, then the document bundle.
	for _, r := range g.phase1.Calls() {
		rw.Audit.Record(r)
	}
	for _, r := range bundle {
		rw.Audit.Record(r)
	}
	res.BytesWritten = em.BytesWritten()
	if t, ok := em.FirstByteAt(); ok {
		res.FirstByte = t.Sub(start)
	}
	res.Calls = g.phase1.Len() + len(bundle)
	return res, nil
}

// sFrame is the engine's per-open-element state.
type sFrame struct {
	label string
	path  []string
	// Exactly one of these classifications applies: virtual (the synthetic
	// forest-level frame), wild (target-undeclared: verbatim passthrough),
	// isData (atomic content: buffered, collapsed at close), or structured
	// (resid tracks the residual content model).
	virtual bool
	wild    bool
	isData  bool
	content *regex.Regex
	resid   *regex.Regex
	// childIdx counts direct children in arrival order — the same indices
	// the tree engine's recursion uses in error paths. preCount snapshots
	// it when the island begins (island positions shift under splices;
	// prefix positions do not).
	childIdx int
	preCount int
	// island buffers the unresolved suffix of the child word; islandOn
	// flips at the first function child (or immediately for data frames).
	islandOn bool
	island   []*doc.Node
	// records accumulates the audit bundles of closed streamed children,
	// in document order.
	records []CallRecord
	// bufBytes/bufNodes account this frame's share of the buffered frontier.
	bufBytes int
	bufNodes int
}

// streamEngine is the event-loop state: the frame stack, the island
// subtree build stack, the phase-1 audit buffer and frontier accounting.
type streamEngine struct {
	rw     *Rewriter
	ex     *executor
	em     *xmlio.Emitter
	c      *Compiled
	d      *regex.Deriver
	spec   *specPool
	frames []*sFrame
	// bstack tracks elements under construction inside the current island:
	// events below an island build real subtrees for the executor.
	bstack []*doc.Node
	phase1 *Audit

	curBytes, peakBytes int
	curNodes, peakNodes int
}

func (g *streamEngine) cur() *sFrame { return g.frames[len(g.frames)-1] }

// account charges a buffered subtree to fr and updates the peak frontier.
func (g *streamEngine) account(fr *sFrame, n *doc.Node) {
	b, c := n.Size(), n.Count()
	fr.bufBytes += b
	fr.bufNodes += c
	g.curBytes += b
	g.curNodes += c
	if g.curBytes > g.peakBytes {
		g.peakBytes = g.curBytes
	}
	if g.curNodes > g.peakNodes {
		g.peakNodes = g.curNodes
	}
}

// releaseBuf returns fr's buffered share to the frontier accounting.
func (g *streamEngine) releaseBuf(fr *sFrame) {
	g.curBytes -= fr.bufBytes
	g.curNodes -= fr.bufNodes
	fr.bufBytes, fr.bufNodes = 0, 0
}

// addIsland appends a direct child to the current frame's island, starting
// the island if needed.
func (g *streamEngine) addIsland(n *doc.Node) {
	fr := g.cur()
	if !fr.islandOn {
		fr.islandOn = true
		fr.preCount = fr.childIdx
	}
	fr.island = append(fr.island, n)
	fr.childIdx++
	g.account(fr, n)
}

// start handles an element-open event.
func (g *streamEngine) start(label string) error {
	if len(g.bstack) > 0 {
		n := doc.Elem(label)
		top := g.bstack[len(g.bstack)-1]
		top.Children = append(top.Children, n)
		g.account(g.cur(), n)
		g.bstack = append(g.bstack, n)
		return nil
	}
	fr := g.cur()
	if fr.islandOn {
		n := doc.Elem(label)
		g.addIsland(n)
		g.bstack = append(g.bstack, n)
		return nil
	}
	if fr.wild {
		g.em.StartElement(label)
		g.frames = append(g.frames, &sFrame{label: label, wild: true})
		return nil
	}
	// Structured (or virtual) frame: the child's symbol extends the
	// function-free prefix, so step the residual. A dead residual means no
	// suffix can complete the word — the tree engine's static check would
	// refuse the document too.
	sym := g.c.Table.Intern(label)
	fr.resid = g.d.Derive(fr.resid, sym)
	if fr.resid.IsNever() {
		return &NotSafeError{Path: pathString(fr.path), Msg: fmt.Sprintf(
			"child %q cannot extend any word matching %s", label, fr.content.String(g.c.Table))}
	}
	idx := fr.childIdx
	fr.childIdx++
	content, isData, declared := g.c.ContentModel(label)
	child := &sFrame{label: label, path: indexedPath(fr.path, label, idx),
		content: content, resid: content, isData: isData, wild: !declared}
	if child.wild && g.rw.ctx.Strict {
		return &NotSafeError{Path: pathString(child.path), Msg: fmt.Sprintf(
			"element %q is not declared by the target schema", label)}
	}
	if isData {
		// The data element's form (<e/>, inline, block) depends on the
		// collapsed child list; buffer from the start.
		child.islandOn = true
	}
	g.em.StartElement(label)
	g.frames = append(g.frames, child)
	return nil
}

// text handles a character-data event.
func (g *streamEngine) text(v string) error {
	if len(g.bstack) > 0 {
		n := doc.TextNode(v)
		top := g.bstack[len(g.bstack)-1]
		top.Children = append(top.Children, n)
		g.account(g.cur(), n)
		return nil
	}
	fr := g.cur()
	if fr.wild {
		g.em.Text(v)
		return nil
	}
	if fr.virtual {
		if strings.TrimSpace(v) != "" {
			return &NotSafeError{Msg: fmt.Sprintf("stray text %q at document level", v)}
		}
		return nil
	}
	if !fr.isData && strings.TrimSpace(v) != "" {
		return &NotSafeError{Path: pathString(fr.path), Msg: fmt.Sprintf(
			"element %q has structured content but contains text", fr.label)}
	}
	if fr.islandOn {
		g.addIsland(doc.TextNode(v))
		return nil
	}
	// Whitespace-only text in a structured element: the tree engine keeps
	// the node, so it streams through (and still occupies a child index).
	fr.childIdx++
	g.em.Text(v)
	return nil
}

// fun handles a complete function subtree.
func (g *streamEngine) fun(n *doc.Node) error {
	if len(g.bstack) == 0 && g.cur().wild {
		return fmt.Errorf("%w: function node under wildcard element %q", ErrStreamUnsupported, g.cur().label)
	}
	// Phase 1 at arrival: sources deliver function subtrees at close-tag
	// time, which is doc.FuncsBottomUp order over the whole document —
	// records land in the phase-1 buffer in tree-engine order. Nested
	// functions inside n's parameters are handled by the recursive
	// materialization, again exactly as the tree engine does.
	g.ex.audit = g.phase1
	if err := g.ex.materializeParams(n, nil); err != nil {
		return err
	}
	if len(g.bstack) > 0 {
		top := g.bstack[len(g.bstack)-1]
		top.Children = append(top.Children, n)
		g.account(g.cur(), n)
		return nil
	}
	fr := g.cur()
	g.addIsland(n)
	// Overlap invocation with parsing: under a streamable target a keep
	// can never pass the word check, so a callable direct occurrence is
	// surely invoked — dispatch it now and let the decision loop claim
	// the result. Data-frame functions go through collapseToData with its
	// own invocability rules; leave those synchronous.
	if g.spec != nil && !fr.isData && g.ex.callable(&item{node: n}) {
		g.spec.dispatch(n)
	}
	return nil
}

// end handles an element-close event.
func (g *streamEngine) end() error {
	if len(g.bstack) > 0 {
		g.bstack = g.bstack[:len(g.bstack)-1]
		return nil
	}
	fr := g.cur()
	g.frames = g.frames[:len(g.frames)-1]
	parent := g.frames[len(g.frames)-1]
	switch {
	case fr.wild:
		// Wildcard territory: the tree engine leaves the subtree untouched.
		g.em.EndElement()
		return nil
	case fr.isData:
		own := &Audit{}
		g.ex.audit = own
		kids, err := g.ex.collapseToData(fr.island, fr.path)
		if err != nil {
			return err
		}
		g.em.Finish(kids)
		g.releaseBuf(fr)
		parent.records = append(parent.records, own.Calls()...)
		return nil
	case fr.islandOn:
		out, bundle, err := g.resolveIsland(fr)
		if err != nil {
			return err
		}
		g.em.Finish(out)
		parent.records = append(parent.records, bundle...)
		return nil
	default:
		// Function-free word: acceptance is exactly nullability of the
		// residual.
		if !fr.resid.Nullable() {
			return &NotSafeError{Path: pathString(fr.path), Msg: fmt.Sprintf(
				"children of %q form an incomplete word for %s", fr.label, fr.content.String(g.c.Table))}
		}
		g.em.EndElement()
		parent.records = append(parent.records, fr.records...)
		return nil
	}
}

// resolveIsland runs the real decision machinery on the buffered suffix
// against the frame's residual target: a static word pre-check (mirroring
// staticCheck.element), the executor's rewriteWord, then element recursion
// over the survivors. It returns the rewritten suffix and the frame's
// complete audit bundle — own word records, then the streamed prefix
// children's bundles, then the island recursion's records, which is the
// tree engine's bundle order for this element.
func (g *streamEngine) resolveIsland(fr *sFrame) ([]*doc.Node, []CallRecord, error) {
	ex := g.ex
	toks := make([]Token, 0, len(fr.island))
	for _, n := range fr.island {
		if n.Kind == doc.Text {
			continue
		}
		tok := Token{Sym: g.c.Table.Intern(n.Label), Node: n}
		if n.Kind == doc.Func && !ex.callable(&item{node: n}) {
			tok.Frozen = true
		}
		toks = append(toks, tok)
	}
	ok, err := g.rw.wordOK(toks, fr.resid, Safe)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, &NotSafeError{Path: pathString(fr.path), Msg: fmt.Sprintf(
			"children %s do not Safe-rewrite into %s within depth %d",
			forestLabels(fr.island), fr.resid.String(g.c.Table), g.rw.K)}
	}
	own := &Audit{}
	ex.audit = own
	out, err := ex.rewriteWord(fr.island, fr.resid, fr.path)
	if err != nil {
		return nil, nil, err
	}
	rec := &Audit{}
	ex.audit = rec
	for j, n := range out {
		switch n.Kind {
		case doc.Func:
			// Unreachable under the streamability gate; refuse rather than
			// emit bytes the batch printer would have namespaced.
			return nil, nil, fmt.Errorf("core: internal: function %q survived a streaming rewrite", n.Label)
		case doc.Element:
			if err := ex.element(n, indexedPath(fr.path, n.Label, fr.preCount+j)); err != nil {
				return nil, nil, err
			}
		}
	}
	bundle := make([]CallRecord, 0, own.Len()+len(fr.records)+rec.Len())
	bundle = append(bundle, own.Calls()...)
	bundle = append(bundle, fr.records...)
	bundle = append(bundle, rec.Calls()...)
	g.releaseBuf(fr)
	return out, bundle, nil
}

// finish closes the virtual forest frame at end of document and returns the
// document bundle.
func (g *streamEngine) finish() ([]CallRecord, error) {
	fr := g.frames[0]
	if fr.islandOn {
		out, bundle, err := g.resolveIsland(fr)
		if err != nil {
			return nil, err
		}
		for _, n := range out {
			g.em.Tree(n)
		}
		return bundle, nil
	}
	if !fr.resid.Nullable() {
		return nil, &NotSafeError{Msg: fmt.Sprintf(
			"document word is incomplete for %s", fr.content.String(g.c.Table))}
	}
	return fr.records, nil
}

// ---------------------------------------------------------------------------
// Speculative invocation: overlap service calls with parsing.

// specPool runs surely-invoked calls ahead of their decision point. The
// decision loop still performs every invocation through the executor —
// validation, converters, the call budget and the audit record all happen
// at claim time in document order — only the wall-clock wait overlaps
// parsing. Unclaimed in-flight calls are cancelled when the rewrite ends.
type specPool struct {
	inner  Invoker
	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup

	mu      sync.Mutex
	pending map[*doc.Node]*specCall
}

type specCall struct {
	done chan struct{}
	res  []*doc.Node
	err  error
}

func newSpecPool(ctx context.Context, inner Invoker, degree int) *specPool {
	ctx, cancel := context.WithCancel(ctx)
	return &specPool{inner: inner, ctx: ctx, cancel: cancel,
		sem: make(chan struct{}, degree), pending: map[*doc.Node]*specCall{}}
}

// dispatch starts call speculatively when a worker slot is free; otherwise
// the call simply happens synchronously at decision time.
func (p *specPool) dispatch(call *doc.Node) {
	select {
	case p.sem <- struct{}{}:
	default:
		return
	}
	sc := &specCall{done: make(chan struct{})}
	p.mu.Lock()
	p.pending[call] = sc
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		sc.res, sc.err = p.inner.Invoke(p.ctx, call)
		close(sc.done)
		<-p.sem
	}()
}

func (p *specPool) claim(call *doc.Node) *specCall {
	p.mu.Lock()
	sc := p.pending[call]
	if sc != nil {
		delete(p.pending, call)
	}
	p.mu.Unlock()
	return sc
}

// close cancels unclaimed in-flight calls and waits for the workers.
func (p *specPool) close() {
	p.cancel()
	p.wg.Wait()
}

// specInvoker resolves claims against the pool before falling back to the
// wrapped invoker. The executor calls it synchronously from the decision
// loop, so audit order is untouched.
type specInvoker struct {
	pool *specPool
}

func (s *specInvoker) Invoke(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
	if sc := s.pool.claim(call); sc != nil {
		select {
		case <-sc.done:
			return sc.res, sc.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s.pool.inner.Invoke(ctx, call)
}
