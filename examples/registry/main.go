// UDDI-like service registry with function patterns (Section 2.1 of the
// paper): the exchange schema does not name a particular weather service —
// it admits *any* function that (a) is listed in the registry (the UDDIF
// predicate), (b) the client may call (the InACL predicate), and (c) has the
// city -> temp signature. Non-invocable functions demonstrate the §2.1
// restriction: a helpful sender must materialize what the receiver refuses
// to call.
//
//	go run ./examples/registry
package main

import (
	"fmt"
	"log"

	"axml"
)

func main() {
	// The registry knows three weather services.
	registry := axml.NewPeer("uddi", axml.MustParseSchemaText(`
elem city = data
elem temp = data
`)).Services
	sharedSchema := axml.MustParseSchemaText(`
root newspaper
elem newspaper = title.(Forecast|temp)
elem title = data
elem temp = data
elem city = data
func Get_Temp_Paris = city -> temp
func Get_Temp_Oslo = city -> temp
func Rogue_Temp = city -> temp
func Wrong_Shape = data -> city
`)
	tempHandler := func(value string) axml.ServiceHandler {
		return func(params []*axml.Node) ([]*axml.Node, error) {
			return []*axml.Node{axml.Elem("temp", axml.Text(value))}, nil
		}
	}
	for name, value := range map[string]string{
		"Get_Temp_Paris": "15",
		"Get_Temp_Oslo":  "-3",
		// Rogue_Temp is deliberately NOT registered: it fails UDDIF.
	} {
		err := registry.Register(&axml.ServiceOperation{
			Name: name, Def: sharedSchema.Funcs[name], Handler: tempHandler(value),
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// The exchange schema's Forecast pattern: listed in the registry AND on
	// the client's ACL AND signature city -> temp.
	uddif := axml.RegistryListed(registry)
	inACL := axml.ACL("Get_Temp_Paris") // the client may only call the Paris service
	preds := map[string]axml.Predicate{"uddif_and_acl": axml.AndPredicates(uddif, inACL)}

	exchangeSrc := `
root newspaper
elem newspaper = title.(Forecast|temp)
elem title = data
elem temp = data
elem city = data
pattern Forecast = city -> temp {pred=uddif_and_acl}
`
	exchange, err := axml.ParseSchemaTextShared(sharedSchema, exchangeSrc, preds)
	if err != nil {
		log.Fatal(err)
	}

	page := func(service string) *axml.Node {
		return axml.Elem("newspaper",
			axml.Elem("title", axml.Text("Local News")),
			axml.Call(service, axml.Elem("city", axml.Text("Paris"))),
		)
	}

	fmt.Println("== which documents conform to the pattern-based exchange schema? ==")
	for _, svc := range []string{"Get_Temp_Paris", "Get_Temp_Oslo", "Rogue_Temp", "Wrong_Shape"} {
		err := axml.Validate(exchange, sharedSchema, page(svc))
		verdict := "accepted (matches Forecast)"
		if err != nil {
			verdict = "rejected — " + err.Error()
		}
		fmt.Printf("  %-16s %s\n", svc, verdict)
	}

	fmt.Println("\n== the sender must materialize what the receiver cannot call ==")
	// Get_Temp_Oslo is registered but not on the receiver's ACL, so it does
	// not match Forecast; the receiver's schema then only admits a concrete
	// temp. The sender materializes before sending.
	strict, err := axml.ParseSchemaTextShared(sharedSchema, `
root newspaper
elem newspaper = title.temp
elem title = data
elem temp = data
elem city = data
`, nil)
	if err != nil {
		log.Fatal(err)
	}
	rw := axml.NewRewriter(sharedSchema, strict, 1, registry)
	rw.Audit = &axml.Audit{}
	out, err := rw.RewriteDocument(page("Get_Temp_Oslo"), axml.Safe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  sent: %v (after %d call)\n", out.ChildLabels(), rw.Audit.Len())

	fmt.Println("\n== non-invocable functions block materialization (§2.1) ==")
	// The same request against a sender schema that marks the service
	// non-invocable (e.g. it costs money): the safe rewriting is refused
	// before anything is called.
	frozenSender, err := axml.ParseSchemaTextShared(sharedSchema, `
root newspaper
elem newspaper = title.(Get_Temp_Oslo|temp)
elem title = data
elem temp = data
elem city = data
func Get_Temp_Oslo = city -> temp {noninvoke}
`, nil)
	if err != nil {
		log.Fatal(err)
	}
	strict2, err := axml.ParseSchemaTextShared(sharedSchema, `
root newspaper
elem newspaper = title.temp
elem title = data
elem temp = data
elem city = data
func Get_Temp_Oslo = city -> temp {noninvoke}
`, nil)
	if err != nil {
		log.Fatal(err)
	}
	rw2 := axml.NewRewriter(frozenSender, strict2, 1, registry)
	if _, err := rw2.RewriteDocument(page("Get_Temp_Oslo"), axml.Safe); err != nil {
		fmt.Printf("  refused as required: %v\n", err)
	} else {
		log.Fatal("a non-invocable function was invoked")
	}
}
