// Streaming I/O: token-event sources over documents and an incremental
// emitter that reproduces the batch printer's byte format exactly.
//
// A TokenSource flattens one document into a SAX-style event sequence. The
// one intensional wrinkle: an <int:fun> subtree — parameters and all — is
// delivered as a single EventFunc carrying the parsed node, because no
// consumer can act on half a function (its parameters travel with the call).
// Everything else streams as Start/Text/End events with O(depth) state.
package xmlio

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"axml/internal/doc"
)

// EventKind discriminates stream events.
type EventKind uint8

const (
	// EventStart opens an ordinary (non-intensional) element.
	EventStart EventKind = iota
	// EventText carries character data. The reader source trims and drops
	// whitespace-only runs, exactly as Parse does; the tree source passes
	// text node values through untouched, exactly as the tree engine sees
	// them.
	EventText
	// EventFunc delivers one complete <int:fun> subtree as a parsed node.
	EventFunc
	// EventEnd closes the innermost open element.
	EventEnd
	// EventEOF follows the root element's close; the source is exhausted.
	EventEOF
)

// Event is one step of a document stream.
type Event struct {
	Kind  EventKind
	Label string    // EventStart: element label
	Text  string    // EventText: character data
	Node  *doc.Node // EventFunc: the function subtree
}

// TokenSource yields one document as a flat event stream.
type TokenSource interface {
	Next() (Event, error)
}

// ---------------------------------------------------------------------------
// Reader source: encoding/xml tokens without tree materialization.

// streamReaderPool recycles the read buffers that keep xml.NewDecoder from
// allocating its own bufio.Reader per stream.
var streamReaderPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 8<<10) }}

// ReaderSource streams a document from an io.Reader: the input is never
// materialized, so resident memory is bounded by the decoder's read window
// plus whatever function subtrees are in flight. Parsing semantics match
// Parse token for token (namespace dispatch, whitespace trimming, the
// <int:fun>/<int:params>/<int:param> grammar and its error messages).
type ReaderSource struct {
	dec     *xml.Decoder
	br      *bufio.Reader // pooled wrapper, nil when r already buffered
	open    []string      // open element labels, for error context
	started bool
	done    bool
}

// NewReaderSource streams one document from r. Call Close when done to
// return the pooled read buffer.
func NewReaderSource(r io.Reader) *ReaderSource {
	s := &ReaderSource{}
	if _, ok := r.(io.ByteReader); !ok {
		s.br = streamReaderPool.Get().(*bufio.Reader)
		s.br.Reset(r)
		r = s.br
	}
	s.dec = xml.NewDecoder(r)
	return s
}

// Close releases pooled resources; the source is unusable afterwards.
func (s *ReaderSource) Close() {
	if s.br != nil {
		s.br.Reset(nil)
		streamReaderPool.Put(s.br)
		s.br = nil
	}
}

// Next returns the next event. After the root element closes the source
// reports EventEOF without reading further, mirroring Parse.
func (s *ReaderSource) Next() (Event, error) {
	if s.done {
		return Event{Kind: EventEOF}, nil
	}
	for {
		tok, err := s.dec.Token()
		if err != nil {
			if err == io.EOF && !s.started {
				return Event{}, fmt.Errorf("xmlio: no root element")
			}
			if len(s.open) > 0 {
				return Event{}, fmt.Errorf("xmlio: inside <%s>: %w", s.open[len(s.open)-1], err)
			}
			return Event{}, fmt.Errorf("xmlio: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Space == Namespace {
				if t.Name.Local != "fun" {
					return Event{}, fmt.Errorf("xmlio: unexpected intensional element <int:%s>", t.Name.Local)
				}
				n, err := parseFun(s.dec, t)
				if err != nil {
					return Event{}, err
				}
				if !s.started { // function root: a complete document
					s.started, s.done = true, true
				}
				return Event{Kind: EventFunc, Node: n}, nil
			}
			s.started = true
			s.open = append(s.open, t.Name.Local)
			return Event{Kind: EventStart, Label: t.Name.Local}, nil
		case xml.CharData:
			if len(s.open) == 0 {
				if strings.TrimSpace(string(t)) != "" && !s.started {
					return Event{}, fmt.Errorf("xmlio: stray text %q before root element", string(t))
				}
				continue // prolog whitespace
			}
			v := strings.TrimSpace(string(t))
			if v == "" {
				continue
			}
			return Event{Kind: EventText, Text: v}, nil
		case xml.EndElement:
			s.open = s.open[:len(s.open)-1]
			if len(s.open) == 0 {
				s.done = true
			}
			return Event{Kind: EventEnd}, nil
		}
	}
}

// ---------------------------------------------------------------------------
// Tree source: walk an already-materialized document as events.

// TreeSource streams an in-memory document. The peer's store hands out
// trees, so its streaming path replays them as events; only O(depth) walker
// state is added on top of the existing tree.
type TreeSource struct {
	stack []treeFrame
}

type treeFrame struct {
	n *doc.Node
	i int // next child index
}

// NewTreeSource streams the document rooted at root.
func NewTreeSource(root *doc.Node) *TreeSource {
	holder := &doc.Node{Kind: doc.Element, Children: []*doc.Node{root}}
	return &TreeSource{stack: []treeFrame{{n: holder}}}
}

// Next returns the next event of the walk.
func (s *TreeSource) Next() (Event, error) {
	for {
		if len(s.stack) == 0 {
			return Event{Kind: EventEOF}, nil
		}
		fr := &s.stack[len(s.stack)-1]
		if fr.i >= len(fr.n.Children) {
			s.stack = s.stack[:len(s.stack)-1]
			if len(s.stack) == 0 {
				return Event{Kind: EventEOF}, nil
			}
			return Event{Kind: EventEnd}, nil
		}
		ch := fr.n.Children[fr.i]
		fr.i++
		switch ch.Kind {
		case doc.Text:
			return Event{Kind: EventText, Text: ch.Value}, nil
		case doc.Func:
			return Event{Kind: EventFunc, Node: ch}, nil
		default:
			s.stack = append(s.stack, treeFrame{n: ch})
			return Event{Kind: EventStart, Label: ch.Label}, nil
		}
	}
}

// ---------------------------------------------------------------------------
// Emitter: incremental serialization, byte-identical to Write.

// Element form stages. The batch printer picks one of three forms per
// element — <e/>, inline single-text, block — by looking at the whole child
// list; the emitter defers that choice until forced, so streamed bytes
// match the batch output exactly.
const (
	stOpen  uint8 = iota // "<label" written; no children seen yet
	stText               // exactly one text child held back, form undecided
	stBlock              // ">\n" committed; children print in block form
)

type emFrame struct {
	label string
	stage uint8
	text  string
}

// Emitter writes a document incrementally: start tags flow out as elements
// open, so the first byte of a large response leaves before the document is
// fully processed. Buffered subtrees (resolved islands) are flushed through
// the same printer the batch path uses.
//
// Errors are sticky in the underlying bufio.Writer and reported by End.
type Emitter struct {
	bw *bufio.Writer
	p  printer
	fr []emFrame
	cw countWriter
}

// countWriter records the bytes that actually reached the destination and
// the wall-clock time of the first such write (first-byte latency).
type countWriter struct {
	w     io.Writer
	n     int64
	first time.Time
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.first.IsZero() && len(p) > 0 {
		c.first = time.Now()
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// NewEmitter starts a document on w (XML declaration included).
func NewEmitter(w io.Writer) *Emitter {
	e := &Emitter{}
	e.cw.w = w
	e.bw = flushWriterPool.Get().(*bufio.Writer)
	e.bw.Reset(&e.cw)
	e.p.b = e.bw
	e.bw.WriteString(xml.Header)
	return e
}

// commit forces the innermost open element into block form, flushing any
// held-back text as a block-form text line.
func (e *Emitter) commit() {
	if len(e.fr) == 0 {
		return
	}
	fr := &e.fr[len(e.fr)-1]
	switch fr.stage {
	case stOpen:
		e.bw.WriteString(">\n")
	case stText:
		e.bw.WriteString(">\n")
		e.p.indent(len(e.fr))
		e.p.escape(fr.text)
		e.bw.WriteByte('\n')
		fr.text = ""
	default:
		return
	}
	fr.stage = stBlock
}

// StartElement opens a child element of the innermost open element.
func (e *Emitter) StartElement(label string) {
	e.commit()
	e.p.indent(len(e.fr))
	e.bw.WriteByte('<')
	e.bw.WriteString(label)
	e.fr = append(e.fr, emFrame{label: label})
}

// Text emits one text child of the innermost open element.
func (e *Emitter) Text(v string) {
	fr := &e.fr[len(e.fr)-1]
	if fr.stage == stOpen {
		fr.stage, fr.text = stText, v
		return
	}
	e.commit()
	e.p.indent(len(e.fr))
	e.p.escape(v)
	e.bw.WriteByte('\n')
}

// Tree emits a complete subtree as a child of the innermost open element
// (or at the root level when nothing is open).
func (e *Emitter) Tree(n *doc.Node) {
	e.commit()
	e.p.node(n, len(e.fr), false)
}

// EndElement closes the innermost open element in whichever form its
// children allow.
func (e *Emitter) EndElement() {
	fr := e.fr[len(e.fr)-1]
	e.fr = e.fr[:len(e.fr)-1]
	switch fr.stage {
	case stOpen:
		e.bw.WriteString("/>\n")
	case stText:
		e.bw.WriteByte('>')
		e.p.escape(fr.text)
		e.bw.WriteString("</")
		e.bw.WriteString(fr.label)
		e.bw.WriteString(">\n")
	default:
		e.p.indent(len(e.fr))
		e.bw.WriteString("</")
		e.bw.WriteString(fr.label)
		e.bw.WriteString(">\n")
	}
}

// Finish closes the innermost open element with kids as its remaining
// children. When nothing was emitted into the element yet, the full child
// list is in hand and the empty and inline single-text forms stay
// reachable — exactly the batch printer's choice.
func (e *Emitter) Finish(kids []*doc.Node) {
	if fr := &e.fr[len(e.fr)-1]; fr.stage == stOpen {
		switch {
		case len(kids) == 0:
			e.fr = e.fr[:len(e.fr)-1]
			e.bw.WriteString("/>\n")
			return
		case len(kids) == 1 && kids[0].Kind == doc.Text:
			e.fr = e.fr[:len(e.fr)-1]
			e.bw.WriteByte('>')
			e.p.escape(kids[0].Value)
			e.bw.WriteString("</")
			e.bw.WriteString(fr.label)
			e.bw.WriteString(">\n")
			return
		}
	}
	for _, k := range kids {
		e.Tree(k)
	}
	e.EndElement()
}

// End terminates the document (trailing newline) and flushes, returning the
// first write error encountered anywhere. The emitter is spent afterwards.
func (e *Emitter) End() error {
	e.bw.WriteByte('\n')
	err := e.bw.Flush()
	e.release()
	return err
}

// Abort discards buffered-but-unflushed bytes and releases pooled state;
// used when a rewrite fails mid-stream. BytesWritten reports whether the
// destination already saw output.
func (e *Emitter) Abort() {
	if e.bw == nil {
		return
	}
	e.release()
}

func (e *Emitter) release() {
	e.bw.Reset(io.Discard)
	flushWriterPool.Put(e.bw)
	e.bw = nil
	e.p.b = nil
}

// BytesWritten reports the bytes that reached the destination writer.
func (e *Emitter) BytesWritten() int64 { return e.cw.n }

// FirstByteAt reports when the first byte reached the destination; ok is
// false when nothing was flushed yet.
func (e *Emitter) FirstByteAt() (time.Time, bool) { return e.cw.first, !e.cw.first.IsZero() }
