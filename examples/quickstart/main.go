// Quickstart: materialize an intensional newspaper document so that it
// conforms to a receiver's exchange schema.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"axml"
)

func main() {
	// The sender's schema: a newspaper may carry either a materialized
	// temperature or a call to a weather service.
	sender := axml.MustParseSchemaText(`
root newspaper
elem newspaper = title.(Get_Temp|temp)
elem title = data
elem temp = data
elem city = data
func Get_Temp = city -> temp
`)
	// The agreed exchange schema: the receiver insists on a concrete temp.
	target := axml.MustParseSchemaTextShared(sender, `
root newspaper
elem newspaper = title.temp
elem title = data
elem temp = data
elem city = data
func Get_Temp = city -> temp
`)

	// The intensional document: temperature still a service call.
	page := axml.Elem("newspaper",
		axml.Elem("title", axml.Text("The Sun")),
		axml.Call("Get_Temp", axml.Elem("city", axml.Text("Paris"))),
	)
	fmt.Println("--- before ---")
	_ = axml.WriteDocument(os.Stdout, page)

	// The "Web service" (in-process here; see examples/searchengine for a
	// real SOAP endpoint).
	weather := axml.InvokerFunc(func(call *axml.Node) ([]*axml.Node, error) {
		city := call.Children[0].Children[0].Value
		fmt.Printf("... Get_Temp(%s) invoked\n", city)
		return []*axml.Node{axml.Elem("temp", axml.Text("15"))}, nil
	})

	// Safe rewriting: the rewriter proves success before calling anything.
	rw := axml.NewRewriter(sender, target, 1, weather)
	rw.Audit = &axml.Audit{}
	out, err := rw.RewriteDocument(page, axml.Safe)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- after ---")
	_ = axml.WriteDocument(os.Stdout, out)
	fmt.Printf("calls made: %d\n", rw.Audit.Len())

	if err := axml.Validate(target, nil, out); err != nil {
		log.Fatal("result does not conform: ", err)
	}
	fmt.Println("result conforms to the exchange schema ✓")
}
