package service

import (
	"context"
	"errors"
	"strings"
	"testing"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/regex"
	"axml/internal/schema"
)

func tempHandler(params []*doc.Node) ([]*doc.Node, error) {
	return []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}, nil
}

func TestRegistryBasics(t *testing.T) {
	s := schema.MustParseText("elem city = data\nelem temp = data", nil)
	r := NewRegistry()
	if err := r.RegisterFunc(s, "Get_Temp", "city", "temp", tempHandler); err != nil {
		t.Fatal(err)
	}
	if s.Funcs["Get_Temp"] == nil {
		t.Fatal("RegisterFunc did not declare the function")
	}
	op, ok := r.Lookup("Get_Temp")
	if !ok || op.Def.Name != "Get_Temp" {
		t.Fatal("Lookup failed")
	}
	out, err := r.Call("Get_Temp", nil)
	if err != nil || len(out) != 1 || out[0].Label != "temp" {
		t.Fatalf("Call = %v, %v", out, err)
	}
	if _, err := r.Call("nope", nil); err == nil {
		t.Error("unknown operation should error")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "Get_Temp" {
		t.Errorf("Names = %v", names)
	}
}

func TestRegistryInvalid(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(nil); err == nil {
		t.Error("nil op accepted")
	}
	if err := r.Register(&Operation{Name: "x"}); err == nil {
		t.Error("handler-less op accepted")
	}
}

func TestRegistryInvoke(t *testing.T) {
	s := schema.MustParseText("elem city = data\nelem temp = data", nil)
	r := NewRegistry()
	if err := r.RegisterFunc(s, "Get_Temp", "city", "temp", func(params []*doc.Node) ([]*doc.Node, error) {
		if len(params) != 1 || params[0].Label != "city" {
			t.Errorf("params = %v", params)
		}
		return tempHandler(params)
	}); err != nil {
		t.Fatal(err)
	}
	out, err := r.Invoke(context.Background(), doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))
	if err != nil || len(out) != 1 {
		t.Fatalf("Invoke = %v, %v", out, err)
	}
}

func TestChain(t *testing.T) {
	s := schema.MustParseText("elem temp = data", nil)
	first := NewRegistry()
	second := NewRegistry()
	if err := second.RegisterFunc(s, "Remote", "data", "temp", tempHandler); err != nil {
		t.Fatal(err)
	}
	chain := Chain{first, second}
	out, err := chain.Invoke(context.Background(), doc.Call("Remote"))
	if err != nil || len(out) != 1 {
		t.Fatalf("chain fallthrough failed: %v, %v", out, err)
	}
	if _, err := chain.Invoke(context.Background(), doc.Call("Nowhere")); err == nil {
		t.Error("unresolvable call should error")
	}
	if _, err := (Chain{}).Invoke(context.Background(), doc.Call("X")); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty chain error = %v", err)
	}
}

func TestChainStopsOnSuccess(t *testing.T) {
	s := schema.MustParseText("elem temp = data", nil)
	first := NewRegistry()
	if err := first.RegisterFunc(s, "Op", "data", "temp", tempHandler); err != nil {
		t.Fatal(err)
	}
	second := NewRegistry()
	if err := second.RegisterFunc(s, "Op", "data", "temp", func([]*doc.Node) ([]*doc.Node, error) {
		t.Error("second invoker must not be reached")
		return nil, errors.New("x")
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := (Chain{first, second}).Invoke(context.Background(), doc.Call("Op")); err != nil {
		t.Fatal(err)
	}
}

func TestPredicateRegistry(t *testing.T) {
	p := NewPredicateRegistry()
	p.Define("always", func(string, *regex.Regex, *regex.Regex) bool { return true })
	pred, ok := p.Get("always")
	if !ok || !pred("anything", nil, nil) {
		t.Error("predicate registry lookup failed")
	}
	if _, ok := p.Get("missing"); ok {
		t.Error("missing predicate found")
	}
	m := p.Map()
	if len(m) != 1 || m["always"] == nil {
		t.Errorf("Map = %v", m)
	}
}

func TestBuiltinPredicates(t *testing.T) {
	s := schema.MustParseText("elem temp = data", nil)
	reg := NewRegistry()
	if err := reg.RegisterFunc(s, "Listed", "data", "temp", tempHandler); err != nil {
		t.Fatal(err)
	}
	uddi := RegistryListed(reg)
	if !uddi("Listed", nil, nil) || uddi("Ghost", nil, nil) {
		t.Error("RegistryListed wrong")
	}
	acl := ACL("Listed", "Other")
	if !acl("Listed", nil, nil) || acl("Ghost", nil, nil) {
		t.Error("ACL wrong")
	}
	both := And(uddi, acl)
	if !both("Listed", nil, nil) {
		t.Error("And should pass Listed")
	}
	aclOnly := And(uddi, ACL("Ghost"))
	if aclOnly("Listed", nil, nil) {
		t.Error("And should fail when one predicate fails")
	}
	if !And()("x", nil, nil) {
		t.Error("empty And should pass")
	}
	if !And(nil, acl)("Listed", nil, nil) {
		t.Error("nil predicates are skipped")
	}
}

// TestFindBySignature: UDDI-style search for services by signature.
func TestFindBySignature(t *testing.T) {
	s := schema.MustParseText(`
elem city = data
elem temp = data
func Get_Temp_Paris = city -> temp
func Get_Temp_Oslo = city -> temp
func Get_City = data -> city
`, nil)
	reg := NewRegistry()
	for _, name := range s.SortedFuncs() {
		def := s.Funcs[name]
		must := reg.Register(&Operation{Name: name, Def: def, Handler: tempHandler})
		if must != nil {
			t.Fatal(must)
		}
	}
	in := regex.MustParse(s.Table, "city")
	out := regex.MustParse(s.Table, "temp")
	got := reg.FindBySignature(in, out)
	if len(got) != 2 || got[0] != "Get_Temp_Oslo" || got[1] != "Get_Temp_Paris" {
		t.Errorf("FindBySignature = %v", got)
	}
	if got := reg.FindBySignature(nil, nil); len(got) != 0 {
		t.Errorf("data->data should match nothing here: %v", got)
	}
}

// TestRegistryWithRewriter wires a registry into a core.Rewriter: the
// paper's Figure 2 flow against a live (in-process) service.
func TestRegistryWithRewriter(t *testing.T) {
	sender := schema.MustParseText(`
root newspaper
elem newspaper = title.(Get_Temp|temp)
elem title = data
elem temp = data
elem city = data
func Get_Temp = city -> temp
`, nil)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), `
root newspaper
elem newspaper = title.temp
elem title = data
elem temp = data
elem city = data
func Get_Temp = city -> temp
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Register(&Operation{Name: "Get_Temp", Def: sender.Funcs["Get_Temp"], Handler: tempHandler}); err != nil {
		t.Fatal(err)
	}
	rw := core.NewRewriter(sender, target, 1, reg)
	root := doc.Elem("newspaper",
		doc.Elem("title", doc.TextNode("The Sun")),
		doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))
	out, err := rw.RewriteDocument(root, core.Safe)
	if err != nil {
		t.Fatal(err)
	}
	if out.Children[1].Label != "temp" {
		t.Errorf("temp not materialized: %v", out.ChildLabels())
	}
}
