package core

import (
	"strings"
	"sync"
	"testing"

	"axml/internal/regex"
	"axml/internal/schema"
)

const cacheSenderText = `
root newspaper
elem newspaper = title.(Get_Temp|temp)
elem title = data
elem temp = data
elem city = data
func Get_Temp = city -> temp
`

const cacheTargetText = `
root newspaper
elem newspaper = title.temp
elem title = data
elem temp = data
elem city = data
func Get_Temp = city -> temp
`

func cachePair(t *testing.T) (*schema.Schema, *schema.Schema) {
	t.Helper()
	sender := schema.MustParseText(cacheSenderText, nil)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), cacheTargetText, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sender, target
}

// TestCompiledCacheCompileOnce is the tentpole acceptance check: no matter
// how many goroutines ask for the same schema pair concurrently, Compile runs
// exactly once (Stats().Misses counts actual Compile runs).
func TestCompiledCacheCompileOnce(t *testing.T) {
	sender, target := cachePair(t)
	cc := NewCompiledCache(8)

	const goroutines, rounds = 16, 25
	results := make([]*Compiled, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				results[i] = cc.Get(sender, target)
			}
		}(i)
	}
	wg.Wait()

	for i, c := range results {
		if c == nil || c != results[0] {
			t.Fatalf("goroutine %d got a different *Compiled", i)
		}
	}
	st := cc.Stats()
	if st.Misses != 1 {
		t.Errorf("Compile ran %d times for one schema pair, want exactly 1 (%s)", st.Misses, st)
	}
	if want := uint64(goroutines*rounds - 1); st.Hits != want {
		t.Errorf("hits = %d, want %d (%s)", st.Hits, want, st)
	}
	if st.Size != 1 {
		t.Errorf("cache holds %d entries, want 1", st.Size)
	}
}

// TestCompiledCacheFingerprintHit: re-parsing the same schema text produces a
// distinct *Schema, but the content fingerprint makes it the same cache entry
// — the /exchange endpoint parses a fresh exchange schema per request.
func TestCompiledCacheFingerprintHit(t *testing.T) {
	sender, target1 := cachePair(t)
	target2, err := schema.ParseTextShared(schema.NewShared(sender.Table), cacheTargetText, nil)
	if err != nil {
		t.Fatal(err)
	}
	if target1 == target2 {
		t.Fatal("test needs two distinct schema values")
	}
	cc := NewCompiledCache(8)
	c1 := cc.Get(sender, target1)
	c2 := cc.Get(sender, target2)
	if c1 != c2 {
		t.Error("identical re-parsed schemas missed the cache")
	}
	if st := cc.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %s, want 1 miss + 1 hit", st)
	}
}

// TestCompiledCacheMutationInvalidates: mutating a schema (DefineQueryService
// calls SetFunc) changes its fingerprint, so the stale analysis is not
// served.
func TestCompiledCacheMutationInvalidates(t *testing.T) {
	sender, target := cachePair(t)
	cc := NewCompiledCache(8)
	c1 := cc.Get(sender, target)
	if err := sender.SetFunc("Late", "city", "temp"); err != nil {
		t.Fatal(err)
	}
	c2 := cc.Get(sender, target)
	if c1 == c2 {
		t.Error("mutated sender schema was served the stale analysis")
	}
	if c2.Func(c2.Table.Intern("Late")) == nil {
		t.Error("recompiled analysis does not know the new function")
	}
}

// TestCompiledCacheLRU: the cache is bounded and evicts least-recently-used
// pairs.
func TestCompiledCacheLRU(t *testing.T) {
	sender, _ := cachePair(t)
	variant := func(n string) *schema.Schema {
		s, err := schema.ParseTextShared(schema.NewShared(sender.Table),
			strings.Replace(cacheTargetText, "elem city = data", "elem city = data\nelem "+n+" = data", 1), nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b, c := variant("aa"), variant("bb"), variant("cc")
	cc := NewCompiledCache(2)
	ca := cc.Get(sender, a)
	cc.Get(sender, b)
	cc.Get(sender, c) // evicts the (sender, a) analysis
	if st := cc.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Errorf("stats = %s, want 1 eviction and size 2", st)
	}
	if cc.Get(sender, a) == ca {
		t.Error("evicted analysis was served")
	}
	cc.Purge()
	if cc.Len() != 0 {
		t.Errorf("Len after Purge = %d", cc.Len())
	}
}

// TestNilCompiledCache: a nil cache degrades to plain compilation.
func TestNilCompiledCache(t *testing.T) {
	sender, target := cachePair(t)
	var cc *CompiledCache
	if cc.Get(sender, target) == nil {
		t.Fatal("nil cache returned nil Compiled")
	}
	if st := cc.Stats(); st != (CacheStats{}) {
		t.Errorf("nil cache stats = %s", st)
	}
	if cc.Len() != 0 || cc.WordStats() != (CacheStats{}) {
		t.Error("nil cache reported residents")
	}
	cc.Purge()
}

// TestPairKeyTableNamespacing: the same declarations in two different symbol
// tables must never share a key, since interned symbol ids differ.
func TestPairKeyTableNamespacing(t *testing.T) {
	s1 := schema.MustParseText(cacheSenderText, nil)
	s2 := schema.MustParseText(cacheSenderText, nil)
	if PairKey(s1, s1) == PairKey(s2, s2) {
		t.Error("pair keys collide across symbol tables")
	}
	if PairKey(nil, s1) != PairKey(s1, s1) {
		t.Error("nil sender must mean sender == target")
	}
}

// TestWordVerdictMemo: repeated words answer from the memo for every
// (engine, mode) combination, and verdicts match the uncached analyses.
func TestWordVerdictMemo(t *testing.T) {
	sender, target := cachePair(t)
	c := Compile(sender, target)
	word := []Token{
		{Sym: c.Table.Intern("title")},
		{Sym: c.Table.Intern("Get_Temp")},
	}
	model := c.ExpandPatterns(target.Labels["newspaper"].Content)

	for _, engine := range []EngineKind{Eager, Lazy} {
		for _, mode := range []Mode{Safe, Possible} {
			v1, err := c.WordVerdict(engine, mode, word, model, 1)
			if err != nil {
				t.Fatal(err)
			}
			v2, err := c.WordVerdict(engine, mode, word, model, 1)
			if err != nil {
				t.Fatal(err)
			}
			if v1 != v2 || !v1 {
				t.Errorf("engine %d mode %s: verdicts %t/%t, want true/true", engine, mode, v1, v2)
			}
		}
	}
	st := c.WordCacheStats()
	if st.Hits != 4 || st.Misses != 4 {
		t.Errorf("word memo stats = %s, want 4 hits + 4 misses", st)
	}

	// Frozen tokens are a different word: must not reuse the plain verdict.
	frozen := []Token{word[0], {Sym: word[1].Sym, Frozen: true}}
	v, err := c.WordVerdict(Eager, Safe, frozen, model, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v {
		t.Error("frozen Get_Temp cannot safely rewrite into title.temp")
	}
}

// TestWordCacheBoundsAndDisable: the memo is LRU-bounded and can be disabled.
func TestWordCacheBoundsAndDisable(t *testing.T) {
	sender, target := cachePair(t)
	c := Compile(sender, target)
	c.SetWordCacheCapacity(2)
	model := c.ExpandPatterns(target.Labels["newspaper"].Content)
	syms := []string{"title", "temp", "city"}
	for _, name := range syms {
		if _, err := c.WordVerdict(Eager, Possible, []Token{{Sym: c.Table.Intern(name)}}, model, 1); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.WordCacheStats(); st.Size != 2 || st.Evictions != 1 {
		t.Errorf("bounded memo stats = %s, want size 2 and 1 eviction", st)
	}

	c.SetWordCacheCapacity(-1)
	for i := 0; i < 3; i++ {
		if _, err := c.WordVerdict(Eager, Possible, []Token{{Sym: c.Table.Intern("title")}}, model, 1); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.WordCacheStats(); st != (CacheStats{}) {
		t.Errorf("disabled memo recorded stats %s", st)
	}
}

// TestWordVerdictMemoConcurrent hammers one Compiled from many goroutines;
// run with -race. This exercises the word memo, the shared Deriver and the
// pattern-expansion memo concurrently.
func TestWordVerdictMemoConcurrent(t *testing.T) {
	sender, target := cachePair(t)
	c := Compile(sender, target)
	model := c.ExpandPatterns(target.Labels["newspaper"].Content)
	words := [][]Token{
		{{Sym: c.Table.Intern("title")}, {Sym: c.Table.Intern("Get_Temp")}},
		{{Sym: c.Table.Intern("title")}, {Sym: c.Table.Intern("temp")}},
		{{Sym: c.Table.Intern("temp")}},
	}
	want := make([]bool, len(words))
	for i, w := range words {
		v, err := c.WordVerdict(Eager, Safe, w, model, 1)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				i := (g + j) % len(words)
				engine := EngineKind(j % 2)
				v, err := c.WordVerdict(engine, Safe, words[i], model, 1)
				if err != nil {
					t.Errorf("verdict: %v", err)
					return
				}
				if v != want[i] {
					t.Errorf("word %d: verdict %t, want %t", i, v, want[i])
					return
				}
				_ = c.ExpandPatterns(target.Labels["newspaper"].Content)
			}
		}(g)
	}
	wg.Wait()
}

// TestSharedDeriverConcurrent exercises the concurrency-safe derivative
// table directly; run with -race.
func TestSharedDeriverConcurrent(t *testing.T) {
	table := regex.NewTable()
	a, b := table.Intern("a"), table.Intern("b")
	r := regex.Concat(regex.Star(regex.Sym(a)), regex.Sym(b))
	d := regex.NewDeriver()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				da := d.Derive(r, a)
				if da.IsNever() || da.Nullable() {
					t.Errorf("d/da (a*.b) = %s, want non-empty and non-nullable", da.String(table))
					return
				}
				if again := d.Derive(r, a); again != da {
					t.Error("memoized derivative not canonical across calls")
					return
				}
				db := d.Derive(r, b)
				if !db.Nullable() {
					t.Error("d/db (a*.b) must be nullable")
					return
				}
			}
		}()
	}
	wg.Wait()
}
