package peer

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// identityExchangeXSD is an exchange schema equivalent to the news peer's
// own (so exchanges succeed); shared by the hardening tests.
const identityExchangeXSD = `
<schema root="newspaper">
  <element name="newspaper"><complexType><sequence>
    <element ref="title"/><element ref="date"/><element ref="temp"/>
    <choice><function ref="TimeOut"/><element ref="exhibit" minOccurs="0" maxOccurs="unbounded"/></choice>
  </sequence></complexType></element>
  <element name="title" type="xs:string"/>
  <element name="date" type="xs:string"/>
  <element name="temp" type="xs:string"/>
  <element name="city" type="xs:string"/>
  <element name="exhibit"><complexType><sequence>
    <element ref="title"/><element ref="date"/>
  </sequence></complexType></element>
  <element name="performance" type="xs:string"/>
  <function id="Get_Temp"><params><param><element ref="city"/></param></params>
    <return><element ref="temp"/></return></function>
  <function id="TimeOut">
    <return><choice minOccurs="0" maxOccurs="unbounded">
      <element ref="exhibit"/><element ref="performance"/>
    </choice></return></function>
</schema>`

// TestExchangeBodyCap: /exchange must enforce the same MaxRequestBytes/413
// discipline as /soap and PUT /doc — before this fix it read an unbounded
// body straight into the schema parser.
func TestExchangeBodyCap(t *testing.T) {
	p := newsPeer(t)
	p.MaxRequestBytes = 4096
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	// A syntactically endless schema body far beyond the cap.
	huge := "<schema root=\"newspaper\">" + strings.Repeat("<annotation>x</annotation>", 8192)
	resp, err := http.Post(ts.URL+"/exchange/today", "text/xml", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized /exchange body = %d, want 413", resp.StatusCode)
	}

	// PUT /doc reports the cap as 413 too (not a generic parse 400).
	hugeDoc := "<memo>" + strings.Repeat("y", 8192)
	if resp := doReq(t, http.MethodPut, ts.URL+"/doc/big", hugeDoc); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized PUT /doc body = %d, want 413", resp.StatusCode)
	}

	// A small well-formed request still works.
	resp2, err := http.Post(ts.URL+"/exchange/today?mode=safe", "text/xml", strings.NewReader(identityExchangeXSD))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("small /exchange body = %d, want 200", resp2.StatusCode)
	}
}

// TestExchangeHostileSchemasBoundedMemory: N distinct exchange schemas, each
// carrying labels the peer has never seen, must not grow the peer's shared
// symbol table at all — untrusted interning is scoped to a per-request
// overlay — and the enforcement cache must stay within its bound rather than
// accumulating one resident analysis per hostile schema.
func TestExchangeHostileSchemasBoundedMemory(t *testing.T) {
	p := newsPeer(t)
	p.Enforcement.Purge()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	// Warm the table with one legitimate exchange so lazily-interned
	// baseline symbols don't muddy the measurement.
	resp, err := http.Post(ts.URL+"/exchange/today?mode=safe", "text/xml", strings.NewReader(identityExchangeXSD))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	before := p.Schema.Table.Len()

	const n = 200
	for i := 0; i < n; i++ {
		hostile := fmt.Sprintf(`
<schema root="newspaper">
  <element name="newspaper"><complexType><sequence>
    <element ref="junk_a_%d"/><element ref="junk_b_%d"/>
  </sequence></complexType></element>
  <element name="junk_a_%d" type="xs:string"/>
  <element name="junk_b_%d" type="xs:string"/>
</schema>`, i, i, i, i)
		resp, err := http.Post(ts.URL+"/exchange/today", "text/xml", strings.NewReader(hostile))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		// The exchange itself fails (422) — the attack is the parse.
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("hostile schema %d: status %d, want 422", i, resp.StatusCode)
		}
	}

	if after := p.Schema.Table.Len(); after != before {
		t.Errorf("shared symbol table grew from %d to %d over %d hostile schemas", before, after, n)
	}
	if size := p.Enforcement.Len(); size > 64 {
		t.Errorf("enforcement cache holds %d entries, want <= its 64 bound", size)
	}
}

// TestExchangeOverlayKeepsCacheHits: the per-request overlay must not defeat
// the enforcement cache — repeated identical exchange schemas still compile
// once and hit thereafter, because equal overlays share a cache namespace.
func TestExchangeOverlayKeepsCacheHits(t *testing.T) {
	p := newsPeer(t)
	p.Enforcement.Purge()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	start := p.Enforcement.Stats()
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/exchange/today?mode=safe", "text/xml", strings.NewReader(identityExchangeXSD))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("exchange %d: status %d", i, resp.StatusCode)
		}
	}
	stats := p.Enforcement.Stats()
	if misses := stats.Misses - start.Misses; misses != 1 {
		t.Errorf("3 identical exchanges compiled %d times, want 1", misses)
	}
	if hits := stats.Hits - start.Hits; hits < 2 {
		t.Errorf("3 identical exchanges hit the cache %d times, want >= 2", hits)
	}
}
