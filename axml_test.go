package axml_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"axml"
)

const senderSrc = `
root newspaper
elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.date
elem performance = data
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
`

const targetSrc = `
root newspaper
elem newspaper = title.date.temp.(TimeOut|exhibit*)
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.date
elem performance = data
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
`

func newspaper() *axml.Node {
	return axml.Elem("newspaper",
		axml.Elem("title", axml.Text("The Sun")),
		axml.Elem("date", axml.Text("04/10/2002")),
		axml.Call("Get_Temp", axml.Elem("city", axml.Text("Paris"))),
		axml.Call("TimeOut", axml.Text("exhibits")),
	)
}

func weatherInvoker(t *testing.T) axml.Invoker {
	return axml.InvokerFunc(func(call *axml.Node) ([]*axml.Node, error) {
		switch call.Label {
		case "Get_Temp":
			return []*axml.Node{axml.Elem("temp", axml.Text("15"))}, nil
		default:
			t.Fatalf("unexpected call %q", call.Label)
			return nil, nil
		}
	})
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sender := axml.MustParseSchemaText(senderSrc)
	target := axml.MustParseSchemaTextShared(sender, targetSrc)

	if err := axml.Validate(sender, nil, newspaper()); err != nil {
		t.Fatalf("document should validate against sender schema: %v", err)
	}
	if err := axml.Validate(target, nil, newspaper()); err == nil {
		t.Fatal("document should not validate against target schema yet")
	}

	rw := axml.NewRewriter(sender, target, 2, weatherInvoker(t))
	rw.Audit = &axml.Audit{}
	out, err := rw.RewriteDocument(newspaper(), axml.Safe)
	if err != nil {
		t.Fatal(err)
	}
	if err := axml.Validate(target, nil, out); err != nil {
		t.Fatalf("rewritten document invalid: %v", err)
	}
	if rw.Audit.Len() != 1 {
		t.Errorf("calls = %d want 1", rw.Audit.Len())
	}
}

func TestPublicAPIDocumentRoundTrip(t *testing.T) {
	s := axml.DocumentString(newspaper())
	back, err := axml.ParseDocumentString(s)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(newspaper()) {
		t.Error("document round trip changed tree")
	}
}

func TestPublicAPISchemaCompatibility(t *testing.T) {
	sender := axml.MustParseSchemaText(senderSrc)
	target := axml.MustParseSchemaTextShared(sender, targetSrc)
	report, err := axml.SchemaCompatible(sender, target, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Safe() {
		t.Errorf("(*) should be compatible with (**): %+v", report.Failures())
	}
	bad := axml.MustParseSchemaTextShared(sender, strings.Replace(targetSrc,
		"elem newspaper = title.date.temp.(TimeOut|exhibit*)",
		"elem newspaper = title.date.temp.exhibit*", 1))
	report2, err := axml.SchemaCompatible(sender, bad, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if report2.Safe() {
		t.Error("(*) must not be compatible with (***)")
	}
}

func TestPublicAPIXSDRoundTrip(t *testing.T) {
	sender := axml.MustParseSchemaText(senderSrc)
	var b strings.Builder
	if err := axml.WriteXSD(&b, sender, nil); err != nil {
		t.Fatal(err)
	}
	back, err := axml.ParseXSD(strings.NewReader(b.String()), nil, nil)
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if err := axml.Validate(back, nil, newspaper()); err != nil {
		t.Errorf("XSD round-tripped schema rejects the document: %v", err)
	}
}

func TestPublicAPICheckOnly(t *testing.T) {
	sender := axml.MustParseSchemaText(senderSrc)
	target := axml.MustParseSchemaTextShared(sender, targetSrc)
	rw := axml.NewRewriter(sender, target, 2, nil) // no invoker: checks only
	if err := rw.CheckDocument(newspaper(), axml.Safe); err != nil {
		t.Errorf("safe check failed: %v", err)
	}
	if _, err := rw.RewriteDocument(newspaper(), axml.Safe); err == nil {
		t.Error("rewriting without an invoker should fail loudly")
	}
}

// TestPublicAPIPolicies drives the invocation layer purely through the axml
// facade: RewriterConfig, policy constructors and the fault injector, without
// importing any internal package.
func TestPublicAPIPolicies(t *testing.T) {
	sender := axml.MustParseSchemaText(senderSrc)
	target := axml.MustParseSchemaTextShared(sender, targetSrc)

	fi := axml.NewFaultInjector(weatherInvoker(t)).
		Plan("Get_Temp", axml.Fault{Kind: axml.FaultError}).
		Plan("TimeOut", axml.Fault{Kind: axml.FaultGarbage, Result: nil})
	rw := axml.NewRewriterWithConfig(sender, target, axml.RewriterConfig{
		Depth:   1,
		Invoker: fi,
		Policies: []axml.InvokePolicy{
			axml.WithBreaker(axml.BreakerPolicy{Failures: 5}),
			axml.WithRetry(axml.RetryPolicy{Attempts: 2, Sleep: func(ctx context.Context, d time.Duration) error { return nil }}),
			axml.WithTimeout(time.Second),
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out, err := rw.RewriteDocumentContext(ctx, newspaper(), axml.Safe)
	if err != nil {
		t.Fatal(err)
	}
	if out.Children[2].Label != "temp" {
		t.Errorf("temp not materialized after retry: %v", out.ChildLabels())
	}
	if rw.Audit == nil || rw.Audit.EventCount("attempt") < 2 {
		t.Errorf("config path should audit attempts, got %v", rw.Audit.Events())
	}
}

// TestPublicAPITelemetry drives the telemetry surface purely through the
// facade: a registry threaded via RewriterConfig, a pinned rewrite ID, the
// Prometheus exposition and the span ring.
func TestPublicAPITelemetry(t *testing.T) {
	sender := axml.MustParseSchemaText(senderSrc)
	target := axml.MustParseSchemaTextShared(sender, targetSrc)
	reg := axml.NewTelemetry()
	rw := axml.NewRewriterWithConfig(sender, target, axml.RewriterConfig{
		Depth:     1,
		Invoker:   weatherInvoker(t),
		Telemetry: reg,
	})
	id := axml.NewRewriteID()
	ctx := axml.WithRewriteID(context.Background(), id)
	if _, err := rw.RewriteDocumentContext(ctx, newspaper(), axml.Safe); err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Value("axml_rewrites_total", "mode", "safe"); !ok || v != 1 {
		t.Errorf("axml_rewrites_total{mode=safe} = %v, %v", v, ok)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `axml_invoke_seconds_count{endpoint="Get_Temp"} 1`) {
		t.Errorf("exposition missing invoke series:\n%s", sb.String())
	}
	var rewriteSpan *axml.TelemetrySpanRecord
	for _, s := range reg.Tracer().Spans() {
		if s.Name == "rewrite.safe" {
			s := s
			rewriteSpan = &s
		}
	}
	if rewriteSpan == nil {
		t.Fatal("no rewrite.safe span recorded")
	}
	if rewriteSpan.TraceID != id {
		t.Errorf("span trace %q not pinned to rewrite id %q", rewriteSpan.TraceID, id)
	}
	if got := rw.Audit.Calls()[0].Rewrite; got != id {
		t.Errorf("audit record stamped %q want %q", got, id)
	}
}
