// Command axml-bench regenerates the paper's figures and analytical claims
// as tables (the E-* experiment index of DESIGN.md / EXPERIMENTS.md).
//
//	axml-bench             # run everything
//	axml-bench -run lazy   # run experiments whose id contains "lazy"
//	axml-bench -list       # list experiment ids
//	axml-bench -invoke out.json  # benchmark the invocation policy chain
//	axml-bench -parallel out.json -min-speedup 2  # parallel-engine smoke gate
//
// Output is deterministic except for wall-clock timings.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/experiments"
	"axml/internal/invoke"
)

func main() {
	runFilter := flag.String("run", "", "only run experiments whose id contains this substring")
	list := flag.Bool("list", false, "list experiment ids and exit")
	invokeOut := flag.String("invoke", "", "benchmark the invocation policy chain and write ns/op JSON to this file")
	parallelOut := flag.String("parallel", "", "benchmark the parallel materialization engine and write the speedup JSON to this file")
	minSpeedup := flag.Float64("min-speedup", 0, "with -parallel: fail unless degree 4 beats degree 1 by this factor (0 = no gate)")
	flag.Parse()

	if *invokeOut != "" {
		if err := benchInvoke(*invokeOut); err != nil {
			fmt.Fprintln(os.Stderr, "axml-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *parallelOut != "" {
		if err := benchParallel(*parallelOut, *minSpeedup); err != nil {
			fmt.Fprintln(os.Stderr, "axml-bench:", err)
			os.Exit(1)
		}
		return
	}

	all := experiments.All()
	if *list {
		for _, t := range all {
			fmt.Printf("%-20s %s\n", t.ID, t.Title)
		}
		return
	}
	ran := 0
	for _, t := range all {
		if *runFilter != "" && !strings.Contains(t.ID, *runFilter) {
			continue
		}
		t.Fprint(os.Stdout)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "axml-bench: no experiment matches %q\n", *runFilter)
		os.Exit(1)
	}
}

// benchInvoke measures the per-call overhead of the policy chain on the
// success path: a bare in-process invoker vs the same invoker behind the full
// default chain (limit + breaker + retry + timeout). The JSON report feeds
// the CI bench-smoke step.
func benchInvoke(path string) error {
	service := core.ContextInvokerFunc(func(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.Elem("temp", doc.TextNode("20"))}, nil
	})
	wrapped := invoke.Chain(service,
		invoke.WithConcurrencyLimit(64),
		invoke.WithBreaker(invoke.Breaker{}),
		invoke.WithRetry(invoke.Retry{Attempts: 3}),
		invoke.WithTimeout(time.Second),
	)
	call := doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris")))
	ctx := context.Background()

	measure := func(inv core.Invoker) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := inv.Invoke(ctx, call); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	bare := measure(service)
	chain := measure(wrapped)

	report := map[string]any{
		"benchmark":           "invoke-policy-chain",
		"bare_ns_per_op":      bare.NsPerOp(),
		"policy_ns_per_op":    chain.NsPerOp(),
		"overhead_ns_per_op":  chain.NsPerOp() - bare.NsPerOp(),
		"bare_iterations":     bare.N,
		"policy_iterations":   chain.N,
		"policy_allocs_op":    chain.AllocsPerOp(),
		"bare_allocs_op":      bare.AllocsPerOp(),
		"chain":               "limit(64) > breaker > retry(3) > timeout(1s)",
		"go_max_procs_note":   "single-goroutine success path; contention not measured here",
		"generated_by_flag":   "-invoke",
		"ns_per_op_unit_note": "lower is better; overhead is the policy tax per successful call",
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("invoke benchmark: bare %d ns/op, policy chain %d ns/op -> %s\n",
		bare.NsPerOp(), chain.NsPerOp(), path)
	return nil
}

// benchParallel measures the parallel materialization engine on the E-P1
// fixture — 16 independent calls behind 1ms of injected latency — at degree
// 1 (the sequential engine) and degree 4, and writes the speedup JSON the
// CI smoke step archives. With minSpeedup > 0 it fails unless degree 4 is
// at least that many times faster, guarding against regressions that
// silently serialize the batch.
func benchParallel(path string, minSpeedup float64) error {
	const (
		funcs   = 16
		latency = time.Millisecond
		reps    = 5
	)
	sender, target := experiments.ParallelPair()
	inv := invoke.Chain(experiments.ParallelInvoker(0), invoke.WithLatency(latency))
	measure := func(degree int) (time.Duration, error) {
		rw := core.NewRewriterFor(core.Compile(sender, target), 2, inv)
		rw.Parallelism = degree
		var total time.Duration
		for i := 0; i < reps; i++ {
			root := experiments.ParallelDoc(funcs)
			start := time.Now()
			if _, err := rw.RewriteDocument(root, core.Safe); err != nil {
				return 0, fmt.Errorf("degree %d: %w", degree, err)
			}
			total += time.Since(start)
		}
		return total / reps, nil
	}
	seq, err := measure(1)
	if err != nil {
		return err
	}
	par, err := measure(4)
	if err != nil {
		return err
	}
	speedup := float64(seq) / float64(par)
	report := map[string]any{
		"benchmark":          "parallel-materialize",
		"funcs":              funcs,
		"latency_ms":         latency.Milliseconds(),
		"reps":               reps,
		"degree1_ns":         seq.Nanoseconds(),
		"degree4_ns":         par.Nanoseconds(),
		"speedup":            speedup,
		"min_speedup":        minSpeedup,
		"speedup_unit_note":  "degree-1 wall clock over degree-4 wall clock; higher is better",
		"generated_by_flag":  "-parallel",
		"workload_unit_note": "16 independent calls, 1ms injected latency each (E-P1 fixture)",
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("parallel benchmark: degree 1 %v, degree 4 %v -> %.2fx speedup -> %s\n",
		seq, par, speedup, path)
	if minSpeedup > 0 && speedup < minSpeedup {
		return fmt.Errorf("parallel speedup %.2fx below required %.2fx", speedup, minSpeedup)
	}
	return nil
}
