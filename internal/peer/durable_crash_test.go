package peer

// Crash-injection suite: a child process (this test binary re-executed via
// TestMain) hammers a DurableRepository with a deterministic Put/Delete
// stream, acknowledging each completed mutation on stdout; the parent
// SIGKILLs it at an arbitrary point — mid-append, mid-snapshot, wherever
// the kill lands — then recovers the directory in-process and checks the
// durability contract: every acknowledged mutation survives, no deleted
// document resurrects, and nothing unexplained appears.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"axml/internal/doc"
	"axml/internal/wal"
)

const crashChildEnv = "AXML_DURABLE_CRASH_DIR"

func TestMain(m *testing.M) {
	if dir := os.Getenv(crashChildEnv); dir != "" {
		runCrashChild(dir)
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func crashName(i int) string { return fmt.Sprintf("doc%06d", i) }

func crashDoc(i int) *doc.Node {
	return doc.Elem("d", doc.TextNode(strconv.Itoa(i)))
}

// The deterministic mutation stream: op i is a delete of doc(i-3) when
// i%7 == 6, otherwise a put of doc(i). Names are never reused, so a put at
// index p is deleted if and only if p%7 == 3 and op p+3 ran.
func runCrashChild(dir string) {
	d, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways, SnapshotEvery: 16})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(2)
	}
	for i := 0; ; i++ {
		if i%7 == 6 {
			if err := d.Delete(crashName(i - 3)); err != nil {
				fmt.Fprintln(os.Stderr, "crash child:", err)
				os.Exit(2)
			}
			fmt.Printf("DEL %d\n", i-3)
		} else {
			if err := d.Put(crashName(i), crashDoc(i)); err != nil {
				fmt.Fprintln(os.Stderr, "crash child:", err)
				os.Exit(2)
			}
			fmt.Printf("PUT %d\n", i)
		}
	}
}

func TestCrashRecoverySIGKILL(t *testing.T) {
	for _, killAfter := range []int{5, 50, 200} {
		t.Run(fmt.Sprintf("kill-after-%d", killAfter), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
			cmd.Stderr = os.Stderr
			out, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			// Read acknowledgements until the kill point, SIGKILL, then
			// drain what the pipe still buffers: every complete line is a
			// mutation the child finished before dying.
			sc := bufio.NewScanner(out)
			acked := 0
			for acked < killAfter && sc.Scan() {
				acked++
			}
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			for sc.Scan() {
				acked++
			}
			_ = cmd.Wait() // expected: signal: killed
			if acked < killAfter {
				t.Fatalf("child died after only %d acks, wanted at least %d", acked, killAfter)
			}

			rec, err := OpenDurable(dir, DurableOptions{})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer rec.Close()
			assertCrashState(t, rec, acked)
		})
	}
}

// assertCrashState checks the recovered repository against the first acked
// ops of the deterministic stream. Ops with index >= acked may or may not
// have been logged before the kill (appended but not yet acknowledged);
// both outcomes are legal, and only for those is uncertainty tolerated.
func assertCrashState(t *testing.T, rec *DurableRepository, acked int) {
	t.Helper()
	present := make(map[string]bool)
	for _, name := range rec.Names() {
		present[name] = true
		n, _ := rec.Get(name)
		idx, err := strconv.Atoi(strings.TrimPrefix(name, "doc"))
		if err != nil || idx%7 == 6 {
			t.Errorf("recovered unexplained document %q", name)
			continue
		}
		if want := crashDoc(idx); !n.Equal(want) {
			t.Errorf("doc %s content = %v, want %v", name, n, want)
		}
	}
	for p := 0; p < acked; p++ {
		if p%7 == 6 {
			continue // a delete op, not a put
		}
		deletedAt := -1
		if p%7 == 3 {
			deletedAt = p + 3
		}
		name := crashName(p)
		switch {
		case deletedAt >= 0 && deletedAt < acked:
			if present[name] {
				t.Errorf("doc %s resurrected: delete at op %d was acknowledged", name, deletedAt)
			}
		case deletedAt >= 0:
			// The delete is in the unacknowledged tail: either outcome ok.
		default:
			if !present[name] {
				t.Errorf("acknowledged doc %s lost (put at op %d)", name, p)
			}
		}
	}
	if st := rec.Stats(); st.WAL.RecoveryTruncated > 1 {
		t.Errorf("recovery truncated %d records; a single kill can tear at most one tail", st.WAL.RecoveryTruncated)
	}
}
