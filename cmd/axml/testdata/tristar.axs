# Schema (***): only exhibits are allowed — not safely reachable.
root newspaper
elem newspaper = title.date.temp.exhibit*
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.date
elem performance = data
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
