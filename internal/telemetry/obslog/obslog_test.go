package obslog

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"axml/internal/telemetry"
)

func fixedNow() time.Time {
	return time.Date(2026, 8, 9, 12, 0, 0, 500_000_000, time.UTC)
}

func newTestLogger(lv Level, f Format) (*Logger, *strings.Builder) {
	var sb strings.Builder
	l := New(&sb, lv, f)
	l.now = fixedNow
	return l, &sb
}

func TestJSONLine(t *testing.T) {
	l, sb := newTestLogger(Info, JSON)
	ctx := telemetry.WithTraceID(context.Background(), "deadbeef-00000001")
	l.Info(ctx, "request served",
		F("status", 200),
		F("duration", 1500*time.Microsecond),
		F("path", `/a "b"`),
		Err(errors.New("boom")),
		Err(nil),
	)
	line := sb.String()
	if !strings.HasSuffix(line, "\n") {
		t.Fatalf("line not newline-terminated: %q", line)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, line)
	}
	if got["ts"] != "2026-08-09T12:00:00.5Z" {
		t.Errorf("ts = %v", got["ts"])
	}
	if got["level"] != "info" || got["msg"] != "request served" {
		t.Errorf("level/msg = %v/%v", got["level"], got["msg"])
	}
	if got["trace_id"] != "deadbeef-00000001" {
		t.Errorf("trace_id = %v", got["trace_id"])
	}
	if got["status"] != float64(200) {
		t.Errorf("status = %v", got["status"])
	}
	if got["duration"] != "1.5ms" {
		t.Errorf("duration = %v", got["duration"])
	}
	if got["path"] != `/a "b"` {
		t.Errorf("path did not round-trip: %v", got["path"])
	}
	if got["error"] != "boom" {
		t.Errorf("error = %v", got["error"])
	}
}

func TestTextLine(t *testing.T) {
	l, sb := newTestLogger(Debug, Text)
	l.Warn(nil, "breaker open", F("endpoint", "Get_Temp"), F("wait", "1s 500ms"))
	line := sb.String()
	for _, want := range []string{"WARN", "breaker open", "endpoint=Get_Temp", `wait="1s 500ms"`} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	if strings.Contains(line, "trace_id") {
		t.Errorf("nil ctx must not stamp a trace ID: %q", line)
	}
}

func TestLevelFiltering(t *testing.T) {
	l, sb := newTestLogger(Warn, Text)
	l.Debug(nil, "nope")
	l.Info(nil, "nope")
	if sb.Len() != 0 {
		t.Fatalf("below-level lines written: %q", sb.String())
	}
	l.Error(nil, "yes")
	if !strings.Contains(sb.String(), "yes") {
		t.Error("at-level line not written")
	}
	if l.Enabled(Info) || !l.Enabled(Error) {
		t.Error("Enabled disagrees with filtering")
	}
}

func TestWithFields(t *testing.T) {
	l, sb := newTestLogger(Info, JSON)
	dl := l.With(F("peer", "news"), F("store", "mem"))
	dl.Info(nil, "hello", F("extra", true))
	var got map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatal(err)
	}
	if got["peer"] != "news" || got["store"] != "mem" || got["extra"] != true {
		t.Errorf("fields = %v", got)
	}
	// The parent logger must not see the derived fields.
	sb.Reset()
	l.Info(nil, "parent")
	if strings.Contains(sb.String(), "peer") {
		t.Errorf("parent logger polluted: %q", sb.String())
	}
}

func TestNilLogger(t *testing.T) {
	var l *Logger
	l.Info(nil, "no-op")          // must not panic
	l.With(F("k", "v")).Error(nil, "x")
	if l.Enabled(Error) {
		t.Error("nil logger reports enabled")
	}
}

func TestParseHelpers(t *testing.T) {
	if lv, err := ParseLevel("WARNING"); err != nil || lv != Warn {
		t.Errorf("ParseLevel(WARNING) = %v, %v", lv, err)
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted junk")
	}
	if f, err := ParseFormat("JSON"); err != nil || f != JSON {
		t.Errorf("ParseFormat(JSON) = %v, %v", f, err)
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("ParseFormat accepted junk")
	}
}

func TestJSONEscaping(t *testing.T) {
	l, sb := newTestLogger(Info, JSON)
	weird := "a\"b\\c\nd\te\x01f"
	l.Info(nil, weird, F("k", weird))
	var got map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("escaping broke JSON: %v\n%s", err, sb.String())
	}
	if got["msg"] != weird || got["k"] != weird {
		t.Errorf("escaping did not round-trip: %v", got)
	}
}

// TestConcurrentWriters proves lines interleave whole (one Write per
// line under the shared mutex), including across With-derived loggers.
func TestConcurrentWriters(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		lines = append(lines, string(p))
		mu.Unlock()
		return len(p), nil
	})
	l := New(w, Info, JSON)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dl := l.With(F("g", g))
			for i := 0; i < 50; i++ {
				dl.Info(nil, "line", F("i", i))
			}
		}(g)
	}
	wg.Wait()
	if len(lines) != 200 {
		t.Fatalf("got %d writes, want 200", len(lines))
	}
	for _, line := range lines {
		var got map[string]any
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("torn line %q: %v", line, err)
		}
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
