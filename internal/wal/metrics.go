package wal

import (
	"time"

	"axml/internal/telemetry"
)

// Metrics bundles the WAL's telemetry series. All fields are registered
// eagerly so the series appear on /metrics from boot (at zero); a nil
// *Metrics no-ops, keeping uninstrumented logs free of telemetry branches.
//
// Series (see DESIGN.md §9 for the catalogue):
//
//	axml_wal_append_seconds                    histogram  append latency (incl. SyncAlways fsync)
//	axml_wal_append_bytes                      histogram  framed record sizes
//	axml_wal_appends_total                     counter    records appended
//	axml_wal_fsync_seconds                     histogram  fsync latency (append-path and background)
//	axml_wal_snapshot_seconds                  histogram  snapshot serialize+write duration
//	axml_wal_snapshot_bytes                    histogram  snapshot file sizes
//	axml_wal_snapshots_total                   counter    snapshots written
//	axml_wal_recovery_replayed_records_total   counter    records replayed at boot
//	axml_wal_recovery_truncated_records_total  counter    torn tails dropped at boot
type Metrics struct {
	appendSeconds     *telemetry.Histogram
	appendBytes       *telemetry.Histogram
	appendsTotal      *telemetry.Counter
	fsyncSeconds      *telemetry.Histogram
	snapshotSeconds   *telemetry.Histogram
	snapshotBytes     *telemetry.Histogram
	snapshotsTotal    *telemetry.Counter
	recoveryReplayed  *telemetry.Counter
	recoveryTruncated *telemetry.Counter
}

// NewMetrics registers the WAL series against reg; nil in, nil out.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		appendSeconds:     reg.Histogram("axml_wal_append_seconds", nil),
		appendBytes:       reg.Histogram("axml_wal_append_bytes", telemetry.SizeBuckets),
		appendsTotal:      reg.Counter("axml_wal_appends_total"),
		fsyncSeconds:      reg.Histogram("axml_wal_fsync_seconds", nil),
		snapshotSeconds:   reg.Histogram("axml_wal_snapshot_seconds", nil),
		snapshotBytes:     reg.Histogram("axml_wal_snapshot_bytes", telemetry.SizeBuckets),
		snapshotsTotal:    reg.Counter("axml_wal_snapshots_total"),
		recoveryReplayed:  reg.Counter("axml_wal_recovery_replayed_records_total"),
		recoveryTruncated: reg.Counter("axml_wal_recovery_truncated_records_total"),
	}
}

func (m *Metrics) observeAppend(d time.Duration, bytes int) {
	if m == nil {
		return
	}
	m.appendSeconds.Observe(d.Seconds())
	m.appendBytes.Observe(float64(bytes))
	m.appendsTotal.Inc()
}

func (m *Metrics) observeFsync(d time.Duration) {
	if m == nil {
		return
	}
	m.fsyncSeconds.Observe(d.Seconds())
}

func (m *Metrics) observeSnapshot(d time.Duration, bytes int) {
	if m == nil {
		return
	}
	m.snapshotSeconds.Observe(d.Seconds())
	m.snapshotBytes.Observe(float64(bytes))
	m.snapshotsTotal.Inc()
}

func (m *Metrics) observeRecovery(state *RecoveredState) {
	if m == nil {
		return
	}
	m.recoveryReplayed.Add(uint64(state.ReplayedRecords))
	m.recoveryTruncated.Add(uint64(state.TruncatedRecords))
}
